"""Figure 7: CRRS read-imbalance handling vs Zipf skewness.

YCSB-B and YCSB-C on a LEED cluster with CRRS enabled vs disabled
(reads at the tail only), sweeping the Zipf constant.  The paper's
result: at low skew CRRS changes little; at 0.9-0.99 it multiplies
throughput (up to 7.3x) and collapses average/99.9th latencies,
because dirty-free replicas absorb the hot keys' reads.
"""

from __future__ import annotations

from repro.bench.harness import (
    QUICK,
    ExperimentResult,
    build_cluster,
    load_cluster,
    run_closed_loop,
    scale_profile,
)
from repro.workloads.ycsb import YCSBWorkload

SKEWS_QUICK = (0.1, 0.5, 0.9, 0.99)
SKEWS_FULL = (0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99)


def run(scale: str = QUICK) -> ExperimentResult:
    profile = scale_profile(scale)
    skews = SKEWS_QUICK if scale == QUICK else SKEWS_FULL
    result = ExperimentResult(
        name="Figure 7: CRRS vs plain chain replication",
        columns=["workload", "skew", "crrs", "kqps", "avg_ms", "p999_ms",
                 "reads_shipped"])
    for workload_name in ("B", "C"):
        for skew in skews:
            for crrs in (True, False):
                workload = YCSBWorkload(workload_name, profile.num_records,
                                        value_size=1024, skew=skew, seed=7)
                cluster = build_cluster("leed", scale=scale, crrs=crrs,
                                        seed=7)
                load_cluster(cluster, workload)
                stats = run_closed_loop(cluster, workload,
                                        profile.num_ops,
                                        profile.concurrency * 4)
                shipped = sum(rt.stats.reads_shipped
                              for node in cluster.jbofs
                              for rt in node.vnodes.values())
                result.add(workload="YCSB-" + workload_name, skew=skew,
                           crrs="on" if crrs else "off",
                           kqps=stats.throughput_qps / 1e3,
                           avg_ms=stats.mean_latency_us() / 1e3,
                           p999_ms=stats.percentile_us(0.999) / 1e3,
                           reads_shipped=shipped)
    return result


if __name__ == "__main__":
    print(run())
