"""Command-line runner for the paper experiments.

Usage::

    python -m repro.bench list
    python -m repro.bench run fig7
    python -m repro.bench run table3 --scale full
    python -m repro.bench run all --scale quick

Each experiment prints its :class:`ExperimentResult` table — the rows
the corresponding paper table/figure reports.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

EXPERIMENTS = {
    "fig1": "Energy efficiency vs capacity, raw 4KB IO, 3 platforms",
    "table1": "Platform comparison (skew, compute density, max load)",
    "table3": "Single-node FAWN-JBOF / KVell-JBOF / LEED",
    "fig5": "Queries/Joule, 6 YCSB workloads, 3 systems",
    "fig6": "Latency vs throughput, 6 workloads, 1KB",
    "fig7": "CRRS on/off vs Zipf skew",
    "fig8": "Load-aware scheduling on/off vs Zipf skew",
    "fig9": "Throughput timeline during node join/leave",
    "fig10": "Intra-JBOF data swapping on/off",
    "fig11": "GET/PUT/DEL latency breakdown",
    "fig12": "Throughput vs PUT fraction, FAWN-Pi vs LEED",
    "fig13": "Compaction intra-/inter-parallelism",
    "fig14": "Latency vs throughput, 256B objects (appendix)",
    "ablation_craq": "Dirty reads: CRRS shipping vs CRAQ version queries",
    "ablation_lsm": "Data structure: circular log vs leveled LSM-tree",
    "ablation_replication": "Replication: chain vs CRAQ vs ABD quorums",
}


def run_experiment(name: str, scale: str) -> None:
    module = importlib.import_module("repro.bench.experiments." + name)
    started = time.time()
    result = module.run(scale)
    elapsed = time.time() - started
    print(result)
    print("(%s scale, %.1f s wall time)" % (scale, elapsed))
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the LEED paper's tables and figures.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiment(s)")
    run_parser.add_argument("experiment",
                            choices=sorted(EXPERIMENTS) + ["all"])
    run_parser.add_argument("--scale", choices=("quick", "full"),
                            default="quick")
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print("%-*s  %s" % (width, name, EXPERIMENTS[name]))
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        run_experiment(name, args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
