"""The LEED JBOF server node (§3.1.2, §3.4, §3.6, §3.7, §3.8).

One :class:`JBOFNode` models a SmartNIC JBOF: SSDs, the SoC cores with
the paper's static core mapping (cores 0..n-1 drive SSDs, the next
cores poll the RDMA receive queues, the last one runs control-plane
tasks), DRAM, a wall-power meter, and a set of *virtual nodes* — one
LEED data store + token I/O engine + compactor per partition.

The node implements:

* the CRRS write path: non-tail replicas mark the key dirty, execute,
  and forward; the tail commits, replies **directly to the client**
  with a one-sided WRITE, and starts the backward ack cascade;
* the CRRS read path: a clean replica serves locally, a dirty one
  ships the request envelope to the tail;
* hop-counter view validation with NACKs (§3.8.1);
* the COPY primitive for join/leave data migration;
* intra-JBOF data swapping of overloaded writes (§3.6);
* heartbeats to the control plane.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.compaction import CompactionConfig, Compactor
from repro.core.datastore import LeedDataStore, OpResult, StoreConfig
from repro.core.hashring import HashRing, VNode
from repro.core.io_engine import (
    TOKEN_COST,
    KVCommand,
    OverloadError,
    PartitionIOEngine,
)
from repro.core.protocol import (
    STATUS_NACK,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_STORE_FULL,
    STATUS_UNAVAILABLE,
    CopyBatch,
    Heartbeat,
    KVReply,
    KVRequest,
    MembershipUpdate,
)
from repro.core.replication import (
    VERSION_QUERY_BYTES,
    DirtyReadMode,
    make_policy,
)
from repro.core.wal import WriteAheadLog
from repro.hw.cpu import CYCLE_COSTS, CpuComplex
from repro.hw.dram import Dram
from repro.hw.platforms import STINGRAY, PlatformSpec
from repro.hw.ssd import NVMeSSD
from repro.net.rpc import RpcEndpoint, RpcRequest
from repro.net.topology import Network, NicProfile, NIC_100G
from repro.power.meter import PowerMeter
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry

#: Virtual-node lifecycle states (§3.8).
JOINING = "JOINING"
RUNNING = "RUNNING"
LEAVING = "LEAVING"

# VERSION_QUERY_BYTES and DirtyReadMode moved to
# repro.core.replication; re-exported here for compatibility.


@dataclass
class LeedOptions:
    """Feature switches for the ablation experiments."""

    #: CRRS request shipping: reads at any clean replica (Fig. 7).
    enable_crrs: bool = True
    #: Dirty-read resolution (:class:`DirtyReadMode`): ``SHIP``
    #: forwards the whole request to the tail (LEED's CRRS, §3.7);
    #: ``CRAQ`` sends a small version query to the tail and serves
    #: locally when the replica is up to date (the alternative the
    #: paper rejected for its extra internal traffic).  Bare strings
    #: are coerced with a DeprecationWarning.
    dirty_read_mode: DirtyReadMode = DirtyReadMode.SHIP
    #: Intra-JBOF write swapping (Fig. 10).
    enable_swap: bool = True
    #: Waiting-queue depth that marks an engine overloaded.
    swap_threshold: int = 6
    #: Token pool per partition engine.
    token_capacity: int = 96
    #: Waiting queue capacity per partition engine.
    waiting_capacity: int = 96
    #: Compactor policy.
    compaction: CompactionConfig = field(default_factory=CompactionConfig)
    #: Background compaction poll period, µs.
    maintenance_poll_us: float = 500.0
    #: Heartbeat period, µs.
    heartbeat_period_us: float = 50_000.0
    #: Batched datapath (docs/performance.md).  ``fast_datapath``
    #: switches CPU cores and SSD channels to analytic fast paths,
    #: delivers NIC traffic without the rx-queue hop, runs client flow
    #: rounds inline, issues client calls via callbacks, and coalesces
    #: same-destination SENDs.  Default off: the one-event-per-step
    #: schedule (and its digests) stays byte-identical.
    fast_datapath: bool = False
    #: Commands the partition engine may drain per scheduler wakeup;
    #: runs of >= 2 GETs execute through the store's vectored
    #: ``multi_get``.  1 = exact pre-batching admission schedule.
    admission_batch: int = 1
    #: Max deferred same-destination requests packed into one SEND.
    rpc_coalesce_limit: int = 8
    #: Journal replicated writes in the per-partition WAL
    #: (:mod:`repro.core.wal`) so :meth:`JBOFNode.recover` can replay
    #: intents whose acknowledgment was lost to a crash.  Appends are
    #: pure memory, so the default-on journal never perturbs the
    #: event schedule.
    wal_enabled: bool = True

    def __post_init__(self):
        self.dirty_read_mode = (DirtyReadMode.coerce(self.dirty_read_mode)
                                or DirtyReadMode.SHIP)


@dataclass
class VNodeStats:
    """Per-virtual-node protocol statistics."""

    writes_forwarded: int = 0
    writes_committed: int = 0
    #: Write attempts refused because they surfaced from a congested
    #: queue after the issuing client's per-attempt deadline (zombie
    #: duplicates of retried writes).
    writes_expired: int = 0
    reads_served: int = 0
    reads_shipped: int = 0
    nacks: int = 0
    copies_in: int = 0
    copies_out: int = 0
    #: Migration pairs refused by the per-key stamp guard (a COPY scan
    #: snapshot arriving after a newer mirrored write).
    copies_stale: int = 0
    version_queries: int = 0
    version_query_bytes: int = 0
    #: Quorum-protocol counters (ABD): phase rounds this vnode
    #: coordinated, commits it applied as a replica, bytes its
    #: coordinator sent, and reads that triggered write-back repair.
    quorum_queries: int = 0
    quorum_commits: int = 0
    quorum_bytes: int = 0
    read_repairs: int = 0


class VNodeRuntime:
    """One virtual node hosted on this JBOF."""

    def __init__(self, vnode_id: str, store: LeedDataStore,
                 engine: PartitionIOEngine, compactor: Compactor):
        self.vnode_id = vnode_id
        self.store = store
        self.engine = engine
        self.compactor = compactor
        self.state = RUNNING
        #: Dirty-key map for CRRS: key -> count of uncommitted writes.
        self.dirty: Dict[bytes, int] = defaultdict(int)
        #: Per-key versions for the CRAQ-style alternative: the version
        #: this replica has applied, and (on the tail) the committed one.
        self.applied_version: Dict[bytes, int] = {}
        self.committed_version: Dict[bytes, int] = {}
        #: Replication-intent journal (capacitor-backed NVRAM model);
        #: policies append before executing a replicated write and
        #: retire on acknowledgment (see :mod:`repro.core.wal`).
        self.wal = WriteAheadLog(vnode_id)
        #: Highest migration stamp applied per key while this vnode is
        #: a COPY/mirror destination (see CopyBatch.versions): stale
        #: scan snapshots arriving after a newer mirrored write are
        #: refused instead of rolling the key back.
        self.migration_stamps: Dict[bytes, object] = {}
        self.stats = VNodeStats()

    def mark_dirty(self, key: bytes) -> None:
        """Note an uncommitted write (CRRS dirty bit, §3.7)."""
        self.dirty[key] += 1

    def clear_dirty(self, key: bytes) -> None:
        """Drop one uncommitted-write reference (backward ack)."""
        count = self.dirty.get(key, 0)
        if count <= 1:
            self.dirty.pop(key, None)
        else:
            self.dirty[key] = count - 1

    def is_dirty(self, key: bytes) -> bool:
        """Whether any write to ``key`` is awaiting its tail commit."""
        return self.dirty.get(key, 0) > 0


class JBOFNode:
    """A SmartNIC JBOF running the LEED stack."""

    def __init__(self, sim: Simulator, network: Network, address: str,
                 spec: PlatformSpec = STINGRAY, num_ssds: int = 4,
                 vnodes_per_ssd: int = 1,
                 store_config: Optional[StoreConfig] = None,
                 options: Optional[LeedOptions] = None,
                 rng: Optional[RngRegistry] = None,
                 nic_profile: Optional[NicProfile] = None,
                 control_plane_address: Optional[str] = None,
                 replication_protocol: Optional[str] = None):
        if num_ssds < 1 or num_ssds > spec.max_ssds:
            raise ValueError("platform %s takes 1..%d SSDs"
                             % (spec.name, spec.max_ssds))
        self.sim = sim
        self.network = network
        self.address = address
        self.spec = spec
        self.options = options or LeedOptions()
        self.store_config = store_config or StoreConfig()
        self.rng = rng or RngRegistry()
        self.control_plane_address = control_plane_address

        network.attach(address, nic_profile or NIC_100G, sim=sim)
        self.rpc = RpcEndpoint(sim, network, address)
        self.cpu = CpuComplex(sim, spec.num_cores, spec.freq_ghz,
                              name=address + ".cpu")
        self.dram = Dram(spec.dram_bytes, spec.dram_bandwidth_bpus,
                         name=address + ".dram")
        self.ssds = [NVMeSSD(sim, spec.ssd_profile, rng=self.rng,
                             name="%s.nvme%d" % (address, i))
                     for i in range(num_ssds)]
        self.meter = PowerMeter(sim, spec, self._utilization,
                                name=address + ".meter")

        # Static core mapping (§3.4): one core per SSD for storage I/O,
        # remaining cores (minus the control core) poll the network.
        self._storage_cores = [self.cpu[i % max(spec.num_cores - 1, 1)]
                               for i in range(num_ssds)]
        net_core_ids = list(range(num_ssds, spec.num_cores - 1)) or [0]
        self._net_cores = [self.cpu[i] for i in net_core_ids]
        self._net_core_rr = 0
        self._control_core = self.cpu[spec.num_cores - 1]

        #: vnode_id -> runtime.
        self.vnodes: Dict[str, VNodeRuntime] = {}
        self._build_vnodes(num_ssds, vnodes_per_ssd)

        #: This node's view of the ring (updated by membership pushes).
        self.local_ring: HashRing = HashRing([], replication=3, version=0)

        self.requests_completed = 0
        self.swap_redirects = 0
        self.alive = True
        #: Set between :meth:`power_fail` and :meth:`power_restore`.
        self._powered_off = False
        #: Software identity, bumped by :meth:`upgrade` during rolling
        #: upgrades (scenario hooks; purely reporting).
        self.software_version = "v1"
        #: Whether the background loops are live — :meth:`recover`
        #: respawns any that exited while the node was down.
        self._heartbeat_running = False
        self._maintenance_running = False
        #: Active migration mirrors: src vnode -> list of
        #: {"arcs", "dst_vnode", "dst_address"}.  While a COPY is in
        #: flight, writes committed here in those arcs are also shipped
        #: to the destination so the migrated range stays consistent.
        self._mirrors: Dict[str, List[dict]] = {}
        #: Crash-recovery WAL replay report (None until a recover()
        #: found journaled intents to replay).
        self.wal_recovery: Optional[dict] = None

        #: The replication protocol driving this node's write fan-out,
        #: read resolution, and recovery replay.  ``dirty_read_mode``
        #: is routed through the policy choice: the legacy CRAQ knob
        #: selects the "craq" protocol when no explicit name is given.
        protocol = replication_protocol or "chain"
        if (protocol == "chain"
                and self.options.dirty_read_mode is DirtyReadMode.CRAQ):
            protocol = "craq"
        self.policy = make_policy(protocol, self)

        self.rpc.register_raw("kv", self._handle_kv)
        self.policy.register_handlers()
        self.rpc.register("copy_batch", self._handle_copy_batch)
        self.rpc.register("copy_mirror", self._handle_copy_mirror)
        self.rpc.register("do_copy", self._handle_do_copy)
        self.rpc.register("mirror_begin", self._handle_mirror_begin)
        self.rpc.register("mirror_end", self._handle_mirror_end)
        self.rpc.register("node_stop", self._handle_node_stop)
        self.rpc.register("membership", self._handle_membership)
        self.rpc.register("vnode_create", self._handle_vnode_create)
        self.rpc.register("vnode_retire", self._handle_vnode_retire)
        if self.options.fast_datapath:
            self._enable_fast_datapath()
        self._spawn_background()

    def _enable_fast_datapath(self) -> None:
        """Server half of the ``fast_datapath`` knob (docs/performance.md)."""
        for core in self.cpu.cores:
            core.fast_path = True
        for ssd in self.ssds:
            ssd.fast_path = True
        for runtime in self.vnodes.values():
            runtime.engine.direct_admit = True
        self.rpc.qp.enable_fast_rx()
        self.rpc.enable_fast_dispatch()
        self.rpc.register_raw_sync("kv", self._handle_kv_fast)

    # -- construction -------------------------------------------------------------

    def _build_vnodes(self, num_ssds: int, vnodes_per_ssd: int) -> None:
        store_id = 0
        all_stores: List[object] = []
        for ssd_index, ssd in enumerate(self.ssds):
            for slot in range(vnodes_per_ssd):
                vnode_id = "%s/p%d" % (self.address, store_id)
                runtime = self._make_vnode(vnode_id, ssd, ssd_index, slot,
                                           store_id)
                self.vnodes[vnode_id] = runtime
                all_stores.append(runtime.store)
                store_id += 1
        self._cross_register(all_stores)

    def _make_vnode(self, vnode_id: str, ssd: NVMeSSD, ssd_index: int,
                    slot: int, store_id: int) -> VNodeRuntime:
        """Create one vnode runtime.  Baseline nodes override this to
        host FAWN or KVell stores behind the same protocol machinery."""
        config = self.store_config
        per_store = config.total_bytes()
        if per_store * (slot + 1) > ssd.capacity_bytes:
            raise ValueError(
                "store %d of %d bytes exceeds SSD capacity %d"
                % (slot, per_store, ssd.capacity_bytes))
        store = LeedDataStore(
            self.sim, ssd, config,
            region_offset=slot * per_store,
            dram=self.dram,
            core=self.storage_core_for(store_id),
            name=vnode_id,
            store_id=store_id)
        engine = PartitionIOEngine(
            self.sim, store,
            token_capacity=self.options.token_capacity,
            waiting_capacity=self.options.waiting_capacity,
            name=vnode_id + ".engine",
            admission_batch=self.options.admission_batch)
        compactor = Compactor(store, self.options.compaction)
        return VNodeRuntime(vnode_id, store, engine, compactor)

    def storage_core_for(self, store_id: int) -> object:
        """Core owning a partition: spread partitions over the
        non-control cores (one per SSD on the Stingray; one per
        worker on a many-core server)."""
        return self.cpu[store_id % max(self.spec.num_cores - 1, 1)]

    def _cross_register(self, all_stores: List[object]) -> None:
        """Cross-register co-located LEED stores for swap & merge-back."""
        leed_stores = [s for s in all_stores if isinstance(s, LeedDataStore)]
        for store in leed_stores:
            for peer in leed_stores:
                store.peer_value_logs[peer.store_id] = peer.value_log
                store.peer_stores[peer.store_id] = peer
            if self.options.enable_swap:
                store.value_router = self._swap_router

    # -- power / utilization ---------------------------------------------------------

    def _utilization(self) -> float:
        """Blend of core and SSD busy fractions for the power model."""
        if self.sim.now <= 0:
            return 0.0
        core_util = self.cpu.mean_utilization()
        ssd_busy = sum(s.stats.busy_time_us / max(s.profile.channels, 1)
                       for s in self.ssds)
        ssd_util = min(ssd_busy / (self.sim.now * max(len(self.ssds), 1)), 1.0)
        return min(0.5 * core_util + 0.5 * ssd_util, 1.0)

    def _net_core(self):
        core = self._net_cores[self._net_core_rr % len(self._net_cores)]
        self._net_core_rr += 1
        return core

    # -- swap routing (§3.6) ------------------------------------------------------------

    def _swap_router(self, store: LeedDataStore, key: bytes,
                     value: bytes) -> tuple:
        """Value placement: home SSD unless its engine is overloaded.

        When the home partition's waiting queue exceeds the threshold
        and a co-located partition on a *different* SSD has spare
        capacity, the value write is redirected there; the key item
        records the holder so GETs and merge-back find it.
        """
        home = self._runtime_of(store)
        if home is None or not home.engine.is_overloaded(
                self.options.swap_threshold):
            return store.store_id, store.value_log
        best = None
        best_tokens = -1
        for runtime in self.vnodes.values():
            peer = runtime.store
            if peer.ssd is store.ssd:
                continue
            if peer.store_id not in store.peer_stores:
                # Not cross-registered (a vnode joined after build):
                # GETs could not resolve a value swapped there.
                continue
            if peer.value_log.free_bytes < len(value) + len(key) + 64:
                continue
            gap = (home.engine.waiting_occupancy
                   - runtime.engine.waiting_occupancy)
            if gap < self.options.swap_threshold // 2:
                continue
            if runtime.engine.tokens > best_tokens:
                best = peer
                best_tokens = runtime.engine.tokens
        if best is None:
            return store.store_id, store.value_log
        self.swap_redirects += 1
        return best.store_id, best.value_log

    def _runtime_of(self, store: LeedDataStore) -> Optional[VNodeRuntime]:
        for runtime in self.vnodes.values():
            if runtime.store is store:
                return runtime
        return None

    # -- request handling (CRRS, §3.7) -----------------------------------------------------

    def _handle_kv(self, src: str, request: RpcRequest):
        """Raw handler: the response may be produced by another node."""
        body: KVRequest = request.body
        parent = body.trace
        ctx = None
        if parent is not None:
            ctx = parent.child("jbof.dispatch", track=self.address,
                               cat="server",
                               args={"op": body.op, "vnode": body.vnode_id,
                                     "hop": body.hop})
            # Children (engine/device spans, shipped sub-dispatches)
            # nest under this node's dispatch span.
            body.trace = ctx
        try:
            yield from self._dispatch_kv(src, request, body)
        finally:
            if ctx is not None:
                ctx.finish()

    def _handle_kv_fast(self, src: str, request: RpcRequest) -> None:
        """Synchronous KV dispatch (fast datapath): no handler process.

        Clean-replica GETs — the overwhelming bulk of read traffic —
        run entirely callback-style: validation inline, the engine
        completion answering the client when it fires.  Everything
        else (writes, dirty reads, traced requests) falls back to the
        process-based path.  The ``rpc_receive`` cost is charged on
        the net core's analytic horizon (busy accounting unchanged)
        but dispatch no longer waits out that sub-microsecond charge.
        """
        body: KVRequest = request.body
        if body.trace is not None:  # sampled: keep the exact traced path
            self.sim.process(self._handle_kv(src, request),
                             name="rpc-raw-kv@" + self.address)
            return
        self._net_core().charge_at(CYCLE_COSTS["rpc_receive"], self.sim.now)
        runtime = self.vnodes.get(body.vnode_id)
        if (runtime is None or runtime.state == JOINING or not self.alive
                or (runtime.state == LEAVING and body.op != "get")):
            self._respond(request, KVReply(
                STATUS_UNAVAILABLE, ring_version=self.local_ring.version))
            return
        chain = self.local_ring.chain_ids_for_key(body.key)
        if (body.hop >= len(chain) or chain[body.hop] != body.vnode_id
                or body.vnode_id not in self.local_ring.vnodes):
            runtime.stats.nacks += 1
            self._respond(request, KVReply(
                STATUS_NACK, ring_version=self.local_ring.version))
            return
        if body.op != "get":
            if body.hop == 0:
                writer = self.policy.on_client_write(runtime, request, body,
                                                     chain)
            else:
                writer = self.policy.on_forward(runtime, request, body, chain)
            self.sim.process(writer, name="rpc-raw-kv@" + self.address)
            return
        if not self.policy.fast_read_local(runtime, body, chain):
            self.sim.process(
                self.policy.serve_read(runtime, request, body, chain),
                name="rpc-raw-kv@" + self.address)
            return

        command = KVCommand("get", body.key, tenant=body.tenant)
        completion = runtime.engine.submit(command)

        def finish(event) -> None:
            if event._ok:
                result = event._value
                self.requests_completed += 1
            else:
                event.defuse()
                result = OpResult(STATUS_OVERLOADED)
            runtime.stats.reads_served += 1
            self._respond(request, self._reply_for(runtime, body, result))

        if completion.triggered:
            finish(completion)
        else:
            completion.callbacks.append(finish)

    def _dispatch_kv(self, src: str, request: RpcRequest, body: KVRequest):
        yield from self._net_core().execute(CYCLE_COSTS["rpc_receive"])
        runtime = self.vnodes.get(body.vnode_id)
        if runtime is None or runtime.state == JOINING or not self.alive:
            self._respond(request, KVReply(STATUS_UNAVAILABLE,
                                           ring_version=self.local_ring.version))
            return
        if runtime.state == LEAVING and body.op != "get":
            self._respond(request, KVReply(STATUS_UNAVAILABLE,
                                           ring_version=self.local_ring.version))
            return

        # Hop-counter view validation (§3.8.1).
        chain = self.local_ring.chain_ids_for_key(body.key)
        if (body.hop >= len(chain) or chain[body.hop] != body.vnode_id
                or body.vnode_id not in self.local_ring.vnodes):
            runtime.stats.nacks += 1
            self._respond(request, KVReply(
                STATUS_NACK, ring_version=self.local_ring.version))
            return

        if body.op == "get":
            yield from self.policy.serve_read(runtime, request, body, chain)
        elif body.hop == 0:
            yield from self.policy.on_client_write(runtime, request, body,
                                                   chain)
        else:
            yield from self.policy.on_forward(runtime, request, body, chain)

    def _respond(self, request: RpcRequest, reply: KVReply) -> None:
        self.rpc.respond(request, reply, reply.wire_bytes())

    # The chain write/read/ack paths that used to live here
    # (_serve_write/_serve_get/_send_ack/_handle_chain_ack/
    # _handle_version_query) moved verbatim into
    # repro.core.replication.chain.ChainReplication.

    def _execute(self, runtime: VNodeRuntime, body: KVRequest):
        """Generator: run the command through the partition engine."""
        command = KVCommand(body.op, body.key, body.value, tenant=body.tenant,
                            trace=body.trace)
        try:
            result: OpResult = yield runtime.engine.submit(command)
        except OverloadError:
            # Waiting queue overflowed: shed the request (§2.3's
            # overload hazard).  The client backs off and retries.
            return OpResult(STATUS_OVERLOADED)
        self.requests_completed += 1
        return result

    def _reply_for(self, runtime: VNodeRuntime, body: KVRequest,
                   result: OpResult) -> KVReply:
        status = {
            "ok": STATUS_OK,
            "not_found": STATUS_NOT_FOUND,
            "store_full": STATUS_STORE_FULL,
        }.get(result.status, result.status)
        return KVReply(status, value=result.value,
                       tokens=runtime.engine.allocation_for(
                           body.tenant, TOKEN_COST.get(body.op, 0)),
                       served_by=runtime.vnode_id,
                       ring_version=self.local_ring.version)

    # -- COPY primitive (§3.8) -------------------------------------------------------------

    def copy_out(self, src_vnode_id: str, dst_vnode_id: str,
                 dst_address: str, predicate=None, batch_size: int = 16):
        """Generator: stream the vnode's (filtered) contents to ``dst``.

        Segments are locked while being copied (COPY is mutually
        exclusive with PUT/DEL); pairs are shipped in batches that the
        destination applies through its engine as PUTs.
        """
        runtime = self.vnodes.get(src_vnode_id)
        if runtime is None:
            return 0
        sent = [0]

        def ship(batch):
            payload = CopyBatch(src_vnode_id, dst_vnode_id,
                                pairs=[(k, v) for k, v, _ in batch],
                                versions=[s for _, _, s in batch])
            sent[0] += len(batch)
            runtime.stats.copies_out += len(batch)
            yield self.rpc.call(dst_address, "copy_batch", payload,
                                payload.wire_bytes(), timeout_us=5e6)

        yield from runtime.store.scan(
            predicate=predicate, batch_size=batch_size, visit=ship,
            stamp=lambda key: self.policy.migration_stamp(runtime, key))
        finale = CopyBatch(src_vnode_id, dst_vnode_id, pairs=[], done=True)
        yield self.rpc.call(dst_address, "copy_batch", finale,
                            finale.wire_bytes(), timeout_us=5e6)
        return sent[0]

    def _migration_apply_fresh(self, runtime: VNodeRuntime, key: bytes,
                               version) -> bool:
        """Admit one migration pair (COPY batch or mirror forward).

        Keeps the per-key high-water stamp and refuses pairs below it:
        a scan snapshot buffered across a newer committed write (which
        the mirror already forwarded) must not roll the key back.
        Unversioned pairs apply unconditionally (arrival order), the
        pre-stamp behavior.
        """
        if version is None:
            return True
        prev = runtime.migration_stamps.get(key)
        if prev is not None and version < prev:
            runtime.stats.copies_stale += 1
            return False
        runtime.migration_stamps[key] = version
        return True

    def _handle_copy_batch(self, src: str, batch: CopyBatch):
        runtime = self.vnodes.get(batch.dst_vnode)
        if runtime is None:
            return KVReply(STATUS_NACK), 16
        applied = 0
        versions = batch.versions or [None] * len(batch.pairs)
        for (key, value), version in zip(batch.pairs, versions):
            if not self._migration_apply_fresh(runtime, key, version):
                continue
            result = yield runtime.engine.submit(
                KVCommand("put", key, value, tenant="__copy__"))
            if result.ok:
                applied += 1
                if version is not None:
                    self.policy.on_migrated(runtime, key, version)
        runtime.stats.copies_in += applied
        reply = KVReply(STATUS_OK, tokens=runtime.engine.allocation_for(
            "__copy__"))
        return reply, reply.wire_bytes()

    # -- migration write mirroring --------------------------------------------------------------

    def begin_mirror(self, src_vnode: str, arcs, dst_vnode: str,
                     dst_address: str) -> None:
        """Start mirroring committed writes of ``arcs`` to ``dst``."""
        self._mirrors.setdefault(src_vnode, []).append(
            {"arcs": list(arcs), "dst_vnode": dst_vnode,
             "dst_address": dst_address})

    def end_mirror(self, src_vnode: str, dst_vnode: str) -> None:
        """Stop mirroring a finished migration's writes."""
        mirrors = self._mirrors.get(src_vnode, [])
        self._mirrors[src_vnode] = [m for m in mirrors
                                    if m["dst_vnode"] != dst_vnode]

    def _handle_mirror_begin(self, src: str, body: dict):
        """RPC entry point for control-plane mirror setup (precedes
        ``do_copy`` on the same connection, so FIFO delivery makes the
        mirror active before the COPY scan starts)."""
        self.begin_mirror(body["src_vnode"], body["arcs"],
                          body["dst_vnode"], body["dst_address"])
        return None

    def _handle_mirror_end(self, src: str, body: dict):
        """RPC entry point for control-plane mirror teardown."""
        self.end_mirror(body["src_vnode"], body["dst_vnode"])
        return None

    def _mirror_write(self, vnode_id: str, key: bytes, value: bytes,
                      version=None) -> None:
        """Forward one committed write to active migration mirrors.

        ``version`` is the write's own commit stamp (chain version int,
        ABD timestamp) — captured by the caller at its commitment
        point, not looked up here, because another write of the same
        key can commit while this one's execute was still yielding.
        """
        from repro.core.hashring import in_arcs, ring_position
        mirrors = self._mirrors.get(vnode_id)
        if not mirrors:
            return
        for mirror in mirrors:
            if in_arcs(ring_position(key), mirror["arcs"]):
                payload = CopyBatch(vnode_id, mirror["dst_vnode"],
                                    pairs=[(key, value)],
                                    versions=[version])
                self.rpc.notify(mirror["dst_address"], "copy_mirror",
                                payload, payload.wire_bytes())

    def _handle_copy_mirror(self, src: str, batch: CopyBatch):
        runtime = self.vnodes.get(batch.dst_vnode)
        if runtime is None:
            return None
        versions = batch.versions or [None] * len(batch.pairs)
        for (key, value), version in zip(batch.pairs, versions):
            if not self._migration_apply_fresh(runtime, key, version):
                continue
            result = yield runtime.engine.submit(
                KVCommand("put", key, value, tenant="__copy__"))
            if result.ok and version is not None:
                self.policy.on_migrated(runtime, key, version)
        return None

    def _handle_do_copy(self, src: str, body: dict):
        """RPC entry point for control-plane-initiated COPY.

        ``body`` carries src/dst vnode ids, the destination address and
        the ring arcs to migrate.
        """
        from repro.core.hashring import in_arcs, ring_position
        arcs = body["arcs"]
        sent = yield from self.copy_out(
            body["src_vnode"], body["dst_vnode"], body["dst_address"],
            predicate=lambda key: in_arcs(ring_position(key), arcs))
        return {"copied": sent}, 16

    # -- membership & liveness ---------------------------------------------------------------

    def _handle_membership(self, src: str, update: MembershipUpdate):
        yield from self._control_core.execute(CYCLE_COSTS["rpc_receive"])
        self.apply_membership(update)
        return None

    def apply_membership(self, update: MembershipUpdate) -> None:
        """Install a new ring snapshot and vnode states."""
        if update.ring_version < self.local_ring.version:
            return
        previous = set(self.local_ring.vnodes)
        vnodes = [VNode(vid, addr) for vid, addr in update.vnodes]
        self.local_ring = HashRing(vnodes, update.replication,
                                   update.ring_version)
        for vnode_id, state in update.states:
            runtime = self.vnodes.get(vnode_id)
            if runtime is not None:
                runtime.state = state
        # Synchronous policy notifications (no events: this also runs
        # at bootstrap, before the simulation starts).
        for vnode_id in sorted(previous - set(self.local_ring.vnodes)):
            self.policy.on_peer_failure(vnode_id)
        self.policy.on_membership_change(update)

    def _spawn_background(self) -> None:
        """Start the maintenance and heartbeat loops (idempotent).

        Called at construction and again by :meth:`recover`: the loops
        exit when they observe a dead node, so a node that comes back
        after a crash or power cycle needs them respawned.  The
        ``_running`` flags guard against double-spawning when recovery
        lands before a loop's next wakeup.
        """
        if not self._maintenance_running:
            self._maintenance_running = True
            self.sim.process(self._maintenance(),
                             name=self.address + ".maintenance")
        if self.control_plane_address is not None \
                and not self._heartbeat_running:
            self._heartbeat_running = True
            self.sim.process(self._heartbeat_loop(),
                             name=self.address + ".heartbeat")

    def _heartbeat_loop(self):
        while True:
            yield self.sim.timeout(self.options.heartbeat_period_us)
            if not self.alive:
                self._heartbeat_running = False
                return
            beat = Heartbeat(self.address, self.sim.now)
            self.rpc.notify(self.control_plane_address, "heartbeat", beat,
                            beat.wire_bytes())

    def _maintenance(self):
        """Background compaction driver for all hosted stores."""
        while True:
            yield self.sim.timeout(self.options.maintenance_poll_us)
            if not self.alive:
                self._maintenance_running = False
                return
            for runtime in list(self.vnodes.values()):
                if runtime.compactor is not None:
                    yield from runtime.compactor.maintenance()

    # -- failure injection -------------------------------------------------------------------

    def stop(self) -> None:
        """Graceful shutdown: heartbeat and maintenance loops exit at
        their next poll.  Unlike :meth:`crash` the node stays on the
        network, so in-flight responses still drain."""
        self.alive = False

    def _handle_node_stop(self, src: str, body) -> None:
        """RPC entry point for cluster shutdown (the cluster reaches
        nodes over the network, never through object references, so
        the same teardown works when nodes live on other shards)."""
        self.stop()
        return None

    def crash(self) -> None:
        """Fail-stop: drop off the network and stop serving."""
        self.alive = False
        self.network.partition(self.address)

    def recover(self) -> None:
        """Rejoin the network after a crash (fail-stop heal).

        If the WAL holds write intents whose acknowledgment never
        arrived before the crash, a replay process re-establishes them
        through the replication policy (after refreshing the ring view
        from the control plane) — see :meth:`_wal_replay`.  With an
        empty journal no process is spawned, so the schedule of runs
        without unacknowledged writes is untouched.
        """
        self.alive = True
        self.network.heal(self.address)
        self._spawn_background()
        self.wal_recovery = None
        if not self.options.wal_enabled:
            return
        pending = sum(len(self.vnodes[vnode_id].wal)
                      for vnode_id in sorted(self.vnodes))
        if pending == 0:
            return
        self.wal_recovery = {"pending": pending, "replayed": 0,
                             "skipped": 0, "failed": 0,
                             "started_at_us": self.sim.now,
                             "completed_at_us": None}
        self.sim.process(self._wal_replay(),
                         name=self.address + ".wal-replay")

    def _wal_replay(self):
        """Replay unacknowledged WAL intents through the policy.

        The ring view is refreshed first (the crash may have outlasted
        the failure detector, reassigning this node's ranges), then
        every journaled record is handed to
        :meth:`ReplicationPolicy.replay` in vnode/LSN order.  Records
        the policy re-proposes count as ``replayed``; records already
        durable in the cluster count as ``skipped``; records whose
        replay raised stay journaled and count as ``failed``.
        """
        report = self.wal_recovery
        if self.control_plane_address is not None:
            try:
                update = yield self.rpc.call(
                    self.control_plane_address, "get_ring", None, 16,
                    timeout_us=1_000_000.0)
            except Exception:
                update = None
            if update is not None:
                self.apply_membership(update)
        for vnode_id in sorted(self.vnodes):
            runtime = self.vnodes[vnode_id]
            for record in runtime.wal.unacknowledged():
                try:
                    replayed = yield from self.policy.replay(runtime, record)
                except Exception:
                    report["failed"] += 1
                    continue
                runtime.wal.mark_replayed(record.lsn, skipped=not replayed)
                report["replayed" if replayed else "skipped"] += 1
        report["completed_at_us"] = self.sim.now

    # -- scenario lifecycle hooks (power loss, upgrades, elasticity) --------------------------

    def power_fail(self) -> None:
        """Power loss: fail-stop *plus* loss of all SoC DRAM state.

        Unlike :meth:`crash` (where the DRAM index survives and the
        node could resume serving immediately), a power failure wipes
        every vnode's SegTbl — only the flash logs and the
        capacitor-backed WAL survive (§3.2.3).  Call
        :meth:`power_restore` to scan the logs and rebuild.
        """
        self.crash()
        self._powered_off = True

    def power_restore(self):
        """Generator: power back on and rebuild from flash (§3.2.3).

        Every vnode gets a fresh store object over its surviving SSD
        region; a sequential key-log scan (:func:`recover_store`)
        rebuilds each SegTbl, then :meth:`recover` heals the network
        and replays unacknowledged WAL intents.  Returns a report dict
        with per-vnode scan results and aggregate timing.
        """
        from repro.core.recovery import recover_store
        started = self.sim.now
        report = {"started_at_us": started, "vnodes": {},
                  "objects_recovered": 0, "blocks_scanned": 0}
        for vnode_id in sorted(self.vnodes):
            fresh = self._rebuild_vnode(self.vnodes[vnode_id],
                                        carry_wal=True)
            scan = yield from recover_store(fresh.store)
            self.vnodes[vnode_id] = fresh
            report["vnodes"][vnode_id] = {
                "blocks_scanned": scan.blocks_scanned,
                "segments_recovered": scan.segments_recovered,
                "live_objects": scan.live_objects,
                "duration_us": scan.duration_us,
            }
            report["objects_recovered"] += scan.live_objects
            report["blocks_scanned"] += scan.blocks_scanned
        self._cross_register([r.store for _, r in sorted(self.vnodes.items())])
        self._powered_off = False
        report["scan_duration_us"] = self.sim.now - started
        self.recover()
        report["wal"] = self.wal_recovery
        return report

    def upgrade(self, version: str) -> None:
        """Replace the node's software in place (rolling upgrade).

        Models the "replace" step of drain → replace → rejoin: every
        vnode's runtime is rebuilt with a *fresh, empty* store (the
        upgraded binary starts cold; the drain step already migrated
        the data away) and marked JOINING so it refuses traffic until
        the control plane re-joins it and COPY repopulates it.
        """
        for vnode_id in sorted(self.vnodes):
            fresh = self._rebuild_vnode(self.vnodes[vnode_id],
                                        carry_wal=False)
            fresh.state = JOINING
            self.vnodes[vnode_id] = fresh
        self._cross_register([r.store for _, r in sorted(self.vnodes.items())])
        self.software_version = version

    def _rebuild_vnode(self, old: VNodeRuntime,
                       carry_wal: bool = True) -> VNodeRuntime:
        """A fresh runtime (store/engine/compactor) over ``old``'s SSD
        region.  The flash content is untouched; the WAL (NVRAM) and
        cumulative stats carry over unless dropped explicitly."""
        store = old.store
        ssd_index = next(i for i, ssd in enumerate(self.ssds)
                         if ssd is store.ssd)
        per_store = self.store_config.total_bytes()
        slot = store.key_log.region_offset // max(per_store, 1)
        fresh = self._make_vnode(old.vnode_id, store.ssd, ssd_index, slot,
                                 store.store_id)
        if carry_wal:
            fresh.wal = old.wal
        fresh.state = old.state
        fresh.stats = old.stats
        return fresh

    def _handle_vnode_create(self, src: str, body: dict):
        """RPC: provision a fresh vnode (control-plane scale-out).

        The new partition lands on the SSD currently hosting the
        fewest stores (lowest index on ties) and starts JOINING — it
        serves no traffic until the control plane completes the join.
        Replies with the new vnode id, or an empty id when no SSD has
        a free region.
        """
        vnode_id = "%s/%s" % (self.address, body["suffix"])
        yield from self._control_core.execute(CYCLE_COSTS["rpc_receive"])
        if vnode_id in self.vnodes:
            return vnode_id, 64  # idempotent retry
        per_store = self.store_config.total_bytes()
        slots_used = [0] * len(self.ssds)
        for _, runtime in sorted(self.vnodes.items()):
            for index, ssd in enumerate(self.ssds):
                if ssd is runtime.store.ssd:
                    slots_used[index] += 1
                    break
        candidates = [i for i in range(len(self.ssds))
                      if per_store * (slots_used[i] + 1)
                      <= self.ssds[i].capacity_bytes]
        if not candidates:
            return "", 64
        ssd_index = min(candidates, key=lambda i: (slots_used[i], i))
        store_id = 1 + max((r.store.store_id
                            for _, r in sorted(self.vnodes.items())),
                           default=-1)
        runtime = self._make_vnode(vnode_id, self.ssds[ssd_index],
                                   ssd_index, slots_used[ssd_index],
                                   store_id)
        runtime.state = JOINING
        self.vnodes[vnode_id] = runtime
        self._cross_register([r.store for _, r in sorted(self.vnodes.items())])
        return vnode_id, 64

    def _handle_vnode_retire(self, src: str, vnode_id: str) -> None:
        """RPC: drop a vnode runtime after its graceful leave."""
        self.vnodes.pop(vnode_id, None)
        return None

    # -- reporting ----------------------------------------------------------------------------

    def total_completed(self) -> int:
        """Requests this node has executed across all vnodes."""
        return self.requests_completed

    def __repr__(self):
        return "<JBOFNode %s vnodes=%d completed=%d>" % (
            self.address, len(self.vnodes), self.requests_completed)
