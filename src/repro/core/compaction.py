"""Key-log and value-log compaction with the paper's optimizations (§3.3.1).

Compaction reclaims fragmented/outdated entries from the log head so
the SSD capacity is fully utilized.  It is heavyweight — it consumes
compute and I/O bandwidth and can stall PUTs on the same bucket — so
LEED adds two optimizations, both reproduced here behind flags so
Fig. 13 can ablate them:

* **prefetching**: while compacting entry N, the blocks of entry N+1
  are already being read, hiding SSD read latency;
* **sub-compactions**: one compaction is split into S parallel
  workers that pipeline read-verify-append over consecutive entries
  (intra-parallelism); several compactions can also be co-scheduled
  (inter-parallelism).

Key-log entries are self-describing (the first bucket header carries
the segment id and chain length), so the scanner walks the head
without any extra index.  Value-log entries carry ``owner_id`` and
``seg_id``, which also lets the compactor merge *swapped* values back
to their home SSD (§3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.circular_log import LogFullError
from repro.core.datastore import LeedDataStore
from repro.core.segment import (
    Segment,
    pack_value_entry,
    peek_segment_header,
    unpack_value_entry,
    value_entry_size,
)
from repro.hw.cpu import CYCLE_COSTS
from repro.sim.core import Simulator
from repro.sim.queues import Store


@dataclass
class CompactionConfig:
    """Policy knobs for the compactor (Fig. 13 ablation points)."""

    #: Prefetch the next entry's blocks while processing the current one.
    prefetch: bool = True
    #: Number of parallel sub-compaction workers (intra-parallelism).
    subcompactions: int = 4
    #: Value entries examined per scan chunk (one relocation
    #: wave; more entries expose more work to the parallel
    #: sub-compaction workers).
    value_scan_chunk: int = 64


@dataclass
class CompactionStats:
    """Cumulative compactor statistics."""

    key_rounds: int = 0
    value_rounds: int = 0
    segments_scanned: int = 0
    segments_relocated: int = 0
    segments_dropped: int = 0
    values_scanned: int = 0
    values_relocated: int = 0
    values_merged_home: int = 0
    tombstones_dropped: int = 0
    key_bytes_reclaimed: int = 0
    value_bytes_reclaimed: int = 0
    busy_time_us: float = 0.0


class Compactor:
    """Runs key-log and value-log compaction for one store."""

    def __init__(self, store: LeedDataStore,
                 config: Optional[CompactionConfig] = None):
        self.store = store
        self.sim: Simulator = store.sim
        self.config = config or CompactionConfig()
        self.stats = CompactionStats()
        self._key_round_active = False
        self._value_round_active = False

    # ------------------------------------------------------------------ key log

    def compact_key_log(self, target_fill: Optional[float] = None):
        """Generator: one key-log compaction round.

        Walks entries from the head; live segments (SegTbl points at
        them) are re-appended at the tail with tombstones dropped;
        dead entries are skipped.  Stops once the fill fraction falls
        below the low watermark (or ``target_fill``).
        """
        if self._key_round_active:
            return 0
        self._key_round_active = True
        started = self.sim.now
        try:
            reclaimed = yield from self._key_round(
                self.store.config.compact_low_watermark
                if target_fill is None else target_fill)
            self.stats.key_rounds += 1
            self.stats.key_bytes_reclaimed += reclaimed
            return reclaimed
        finally:
            self.stats.busy_time_us += self.sim.now - started
            self._key_round_active = False

    def _key_round(self, target_fill: float):
        store = self.store
        log = store.key_log
        block = log.block_size
        workers = max(self.config.subcompactions, 1)
        start_head = log.head

        # Pipeline: a scanner discovers entry boundaries (they are
        # self-describing, so discovery is serial) and S workers
        # relocate live segments concurrently.  The head only advances
        # past entries whose relocation completed (in-order commit).
        tasks: Store = Store(self.sim, capacity=workers * 2)
        done_offsets: Dict[int, int] = {}  # entry offset -> entry end
        commit_head = [log.head]

        def advance_commit():
            while done_offsets and commit_head[0] in done_offsets:
                end = done_offsets.pop(commit_head[0])
                commit_head[0] = end
            if commit_head[0] > log.head:
                log.advance_head(commit_head[0])

        def worker():
            while True:
                task = yield tasks.get()
                if task is None:
                    return
                offset, seg_id, chain_len, first_block = task
                end = offset + chain_len * block
                live = store.segtbl.location(seg_id) == (offset, chain_len)
                if live:
                    yield store.segtbl.lock(seg_id)
                    try:
                        # Re-check under the lock: a PUT may have moved it.
                        if store.segtbl.location(seg_id) == (offset, chain_len):
                            if chain_len > 1:
                                rest = yield from log.read(offset + block,
                                                           (chain_len - 1) * block)
                                blob = first_block + rest
                            else:
                                blob = first_block
                            segment = Segment.unpack(blob, block)
                            yield from store._charge_cpu(
                                CYCLE_COSTS["compaction_per_entry"]
                                * max(len(list(segment.iter_items())), 1))
                            self.stats.tombstones_dropped += segment.drop_tombstones()
                            if segment.live_items():
                                while True:
                                    try:
                                        yield from store._write_segment(
                                            segment)
                                        break
                                    except LogFullError:
                                        # Absolute worst case: wait for
                                        # another worker's commit to
                                        # advance the head.
                                        yield self.sim.timeout(100.0)
                                self.stats.segments_relocated += 1
                            else:
                                # Fully-deleted segment: forget it.
                                store.segtbl.update(seg_id, -1, 0)
                                store.segtbl.entries[seg_id].offset = -1
                                store.segtbl.entries[seg_id].chain_len = 0
                                self.stats.segments_dropped += 1
                    finally:
                        store.segtbl.unlock(seg_id)
                done_offsets[offset] = end
                advance_commit()

        worker_procs = [self.sim.process(worker(),
                                         name=store.name + ".kcompact.w%d" % i)
                        for i in range(workers)]

        scan = log.head
        end_tail = log.tail  # do not chase our own re-appended entries
        prefetched: Optional[tuple] = None  # (offset, process)
        while log.fill_fraction() > target_fill and scan < end_tail:
            # First block of the entry at ``scan`` — possibly prefetched.
            if prefetched is not None and prefetched[0] == scan:
                first_block = yield prefetched[1]
            else:
                first_block = yield from log.read(scan, block)
            seg_id, chain_len = peek_segment_header(first_block)
            self.stats.segments_scanned += 1
            entry_end = scan + chain_len * block
            if self.config.prefetch and entry_end < end_tail:
                prefetched = (entry_end,
                              self.sim.process(log.read(entry_end, block),
                                               name=store.name + ".kprefetch"))
            else:
                prefetched = None
            yield tasks.put((scan, seg_id, chain_len, first_block))
            scan = entry_end
        for _ in worker_procs:
            yield tasks.put(None)
        yield self.sim.all_of(worker_procs)
        advance_commit()
        return log.head - start_head

    # ------------------------------------------------------------------ value log

    def compact_value_log(self, target_fill: Optional[float] = None):
        """Generator: one value-log compaction round.

        For each entry at the head: resolve the owning store via the
        ``owner_id`` tag, verify liveness against its segment, and
        re-append live values — to the *owner's home* value log, which
        both compacts and merges swapped data back (§3.6).  The owning
        segments are locked while their items are repointed.
        """
        if self._value_round_active:
            return 0
        self._value_round_active = True
        started = self.sim.now
        try:
            reclaimed = yield from self._value_round(
                self.store.config.compact_low_watermark
                if target_fill is None else target_fill)
            self.stats.value_rounds += 1
            self.stats.value_bytes_reclaimed += reclaimed
            return reclaimed
        finally:
            self.stats.busy_time_us += self.sim.now - started
            self._value_round_active = False

    def _value_round(self, target_fill: float):
        store = self.store
        log = store.value_log
        start_head = log.head
        header_size = value_entry_size(0, 0)

        scan = log.head
        end_tail = log.tail  # do not chase our own re-appended entries
        while log.fill_fraction() > target_fill and scan < end_tail:
            # Read a chunk of entries (one device read amortized over
            # value_scan_chunk entries on average).
            chunk_len = min(end_tail - scan, 64 * 1024)
            blob = yield from log.read(scan, chunk_len)
            cursor = 0
            batch: List[tuple] = []
            while cursor + header_size <= len(blob) and len(batch) < \
                    self.config.value_scan_chunk:
                try:
                    seg_id, key, value, size, owner = unpack_value_entry(
                        blob, cursor)
                except Exception:
                    break
                if size <= header_size or cursor + size > len(blob):
                    break
                batch.append((scan + cursor, seg_id, key, value, size, owner))
                cursor += size
            if not batch:
                # Nothing parseable (zero padding at a wrap, or a torn
                # chunk): step over one block defensively.
                scan = min(scan + log.block_size, log.tail)
                if scan > log.head:
                    log.advance_head(scan)
                continue

            yield from self._relocate_value_batch(batch)
            scan += cursor
            log.advance_head(min(scan, log.tail))
        return log.head - start_head

    def _relocate_value_batch(self, batch: List[tuple]):
        """Generator: verify & relocate one batch of value entries.

        Groups are split across ``subcompactions`` parallel workers —
        the intra-parallelism of §3.3.1/Fig. 13a applied to the value
        log.  Each group locks its owning segment, so workers never
        race on segment state.
        """
        store = self.store
        groups: Dict[tuple, List[tuple]] = {}
        for entry in batch:
            offset, seg_id, key, value, size, owner = entry
            self.stats.values_scanned += 1
            groups.setdefault((owner, seg_id), []).append(entry)
        group_items = list(groups.items())
        workers = max(min(self.config.subcompactions, len(group_items)), 1)
        if workers == 1:
            yield from self._relocate_groups(group_items)
            return
        shares = [group_items[i::workers] for i in range(workers)]
        processes = [self.sim.process(self._relocate_groups(share),
                                      name=store.name + ".vcompact.w")
                     for share in shares if share]
        yield self.sim.all_of(processes)

    def _relocate_groups(self, group_items):

        """Generator: process (owner, seg_id) groups sequentially."""
        store = self.store
        for (owner, seg_id), entries in group_items:
            owner_store = store.peer_stores.get(owner)
            if owner_store is None:
                continue  # owner store was removed; entries are dead
            location = owner_store.segtbl.location(seg_id)
            if location is None:
                continue
            yield owner_store.segtbl.lock(seg_id)
            try:
                location = owner_store.segtbl.location(seg_id)
                if location is None:
                    continue
                segment = yield from owner_store._read_segment(*location)
                dirty = False
                for offset, _seg_id, key, value, size, _owner in entries:
                    item = segment.find(key)
                    live = (item is not None and not item.is_tombstone
                            and item.voffset == offset
                            and item.ssd_id == store.store_id)
                    if not live:
                        continue
                    # Re-append to the owner's HOME value log: this is
                    # both relocation and swap merge-back.
                    home_log = owner_store.value_log
                    new_entry = pack_value_entry(seg_id, key, value,
                                                 owner_id=owner)
                    try:
                        new_offset = yield from home_log.append_bytes(new_entry)
                    except LogFullError:
                        continue  # leave in place; next round retries
                    item.voffset = new_offset
                    if item.ssd_id != owner_store.store_id:
                        self.stats.values_merged_home += 1
                    item.ssd_id = owner_store.store_id
                    dirty = True
                    self.stats.values_relocated += 1
                    yield from store._charge_cpu(
                        CYCLE_COSTS["compaction_per_entry"])
                if dirty:
                    yield from owner_store._write_segment(segment)
            finally:
                owner_store.segtbl.unlock(seg_id)

    # ------------------------------------------------------------------ driver

    def maintenance(self):
        """Generator: run whatever compactions the watermarks demand."""
        ran = 0
        if self.store.needs_key_compaction() and not self._key_round_active:
            ran += yield from self.compact_key_log()
        if self.store.needs_value_compaction() and not self._value_round_active:
            ran += yield from self.compact_value_log()
        return ran

    def maintenance_loop(self, poll_us: float = 200.0):
        """Generator: background maintenance process for one store."""
        while True:
            yield self.sim.timeout(poll_us)
            yield from self.maintenance()
