"""The control-plane manager (§3.1.2, §3.8).

Stands in for the etcd-backed manager of the paper: it maintains the
partition→virtual-node mapping, monitors JBOF health via heartbeats,
performs membership management on join/leave/failure, and pushes ring
snapshots to every JBOF and client over the (simulated) network — so
different nodes genuinely hold *different views* for a while, which
is what the hop-counter/NACK machinery exists to absorb.

Join (§3.8.1):   add vnode as JOINING → old-ring tails COPY the
stipulated ranges (mirroring concurrent committed writes) → vnode
becomes RUNNING in a new ring version → broadcast.

Leave (§3.8.1):  mark LEAVING (clients immediately stop picking it
for reads) → tails COPY to the nodes that gain responsibility →
remove from the ring → broadcast.

Failure (§3.8.2): missed heartbeats → treat as involuntary leave, but
COPY sources are the surviving chain tails, and nodes that gained
responsibility stay JOINING (unavailable, so reads fail over to
replicas that do hold the data) until their catch-up COPY completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.hashring import HashRing, VNode
from repro.core.jbof import JOINING, LEAVING, RUNNING, JBOFNode
from repro.core.protocol import Heartbeat, MembershipUpdate
from repro.net.rpc import RpcEndpoint, RpcTimeout
from repro.net.topology import Network
from repro.sim.core import Simulator


@dataclass
class VNodeInfo:
    """Control-plane record for one virtual node."""

    vnode_id: str
    jbof_address: str
    state: str = RUNNING


@dataclass
class CopyTask:
    """One COPY assignment: src streams arcs' keys to dst."""

    src_vnode: str
    src_address: str
    dst_vnode: str
    dst_address: str
    arcs: List[Tuple[int, int]]


def _split_arc(arc: Tuple[int, int], ring: HashRing) -> List[Tuple[int, int]]:
    """Split ``(lo, hi]`` at ``ring``'s vnode positions.

    Keys on either side of a vnode position map to different chains,
    so COPY planning must treat the sub-arcs independently.
    """
    lo, hi = arc
    cuts = sorted(position for position in ring._positions
                  if lo < position < hi)
    if not cuts:
        return [arc]
    bounds = [lo] + cuts + [hi]
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]


class ControlPlane:
    """Centralized (etcd-like, quorum-backed in the paper) manager."""

    def __init__(self, sim: Simulator, network: Network,
                 address: str = "controlplane", replication: int = 3,
                 heartbeat_timeout_us: float = 200_000.0,
                 push_delay_jitter_us: float = 2_000.0,
                 replication_protocol: str = "chain"):
        self.sim = sim
        self.network = network
        self.address = address
        self.replication = replication
        self.replication_protocol = replication_protocol
        self.heartbeat_timeout_us = heartbeat_timeout_us
        self.push_delay_jitter_us = push_delay_jitter_us
        network.attach(address, sim=sim)
        self.rpc = RpcEndpoint(sim, network, address)
        self.vnodes: Dict[str, VNodeInfo] = {}
        self.ring_version = 0
        self._subscribers: List[str] = []   # jbof + client addresses
        self._jbofs: Dict[str, JBOFNode] = {}
        self._last_heartbeat: Dict[str, float] = {}
        self._failed: set = set()
        self.membership_events: List[tuple] = []  # (time, kind, vnode_id)
        self._stopped = False
        self.rpc.register("heartbeat", self._handle_heartbeat)
        self.rpc.register("get_ring", self._handle_get_ring)
        self._monitor = sim.process(self._monitor_loop(), name="cp.monitor")

    # -- registration / bootstrap ----------------------------------------------------

    def register_jbof(self, node: JBOFNode) -> None:
        """Track a JBOF: its vnodes join the (unpublished) directory."""
        self._jbofs[node.address] = node
        self._last_heartbeat[node.address] = self.sim.now
        if node.address not in self._subscribers:
            self._subscribers.append(node.address)
        for vnode_id in node.vnodes:
            self.vnodes[vnode_id] = VNodeInfo(vnode_id, node.address)

    def subscribe(self, address: str) -> None:
        """Add a client address to the membership push list."""
        if address not in self._subscribers:
            self._subscribers.append(address)

    def bootstrap(self) -> None:
        """Publish the initial ring (version 1) to everyone."""
        self.ring_version += 1
        self._broadcast(immediate=True)

    # -- ring snapshots ------------------------------------------------------------------

    def master_ring(self) -> HashRing:
        """The authoritative ring: serving vnodes only."""
        members = [VNode(info.vnode_id, info.jbof_address)
                   for info in self.vnodes.values()
                   if info.state in (RUNNING, LEAVING)]
        return HashRing(members, self.replication, self.ring_version)

    def membership_snapshot(self) -> MembershipUpdate:
        """The current membership view as a push/pull payload.

        This is the public accessor for the cluster snapshot — the
        same payload heartbeat pushes and ``get_ring`` pulls carry.
        """
        ring = self.master_ring()
        return MembershipUpdate(
            ring_version=self.ring_version,
            vnodes=[(v.vnode_id, v.jbof_address)
                    for v in ring.vnodes.values()],
            states=[(i.vnode_id, i.state) for i in self.vnodes.values()],
            replication=self.replication,
            replication_protocol=self.replication_protocol)

    def _update_payload(self) -> MembershipUpdate:
        """Deprecated private alias of :meth:`membership_snapshot`.

        Kept for one release so external callers migrate; new code
        must use the public name.
        """
        return self.membership_snapshot()

    def _broadcast(self, immediate: bool = False) -> None:
        """Push the current snapshot to all subscribers.

        Pushes ride the simulated network (plus etcd-watch jitter), so
        subscribers converge asynchronously.
        """
        payload = self.membership_snapshot()
        for index, address in enumerate(self._subscribers):
            if immediate:
                node = self._jbofs.get(address)
                if node is not None:
                    node.apply_membership(payload)
                    continue
            delay = (index * 37.0) % max(self.push_delay_jitter_us, 1.0)
            self.sim.schedule(delay, lambda a=address: self.rpc.notify(
                a, "membership", payload, payload.wire_bytes()))
        # Clients registered with immediate bootstrap still get the push
        # over the network (they handle duplicates by version check).
        if immediate:
            for address in self._subscribers:
                if address not in self._jbofs:
                    self.rpc.notify(address, "membership", payload,
                                    payload.wire_bytes())

    # -- heartbeats & failure detection -----------------------------------------------------

    def _handle_heartbeat(self, src: str, beat: Heartbeat):
        self._last_heartbeat[beat.jbof_address] = self.sim.now
        yield self.sim.timeout(0)
        return None

    def _handle_get_ring(self, src: str, _body):
        payload = self.membership_snapshot()
        yield self.sim.timeout(0)
        return payload, payload.wire_bytes()

    def stop(self) -> None:
        """Stop the failure monitor (cluster shutdown); idempotent."""
        self._stopped = True

    def _monitor_loop(self):
        while not self._stopped:
            yield self.sim.timeout(self.heartbeat_timeout_us / 4.0)
            if self._stopped:
                return
            now = self.sim.now
            for address, last in list(self._last_heartbeat.items()):
                if address in self._failed:
                    continue
                if now - last > self.heartbeat_timeout_us:
                    self._failed.add(address)
                    self.sim.process(self.handle_jbof_failure(address),
                                     name="cp.fail." + address)

    # -- membership operations ------------------------------------------------------------------

    def join_vnode(self, vnode_id: str, jbof_address: str):
        """Generator: orchestrate one vnode's join (§3.8.1)."""
        self.membership_events.append((self.sim.now, "join_start", vnode_id))
        info = self.vnodes.get(vnode_id)
        if info is None:
            info = VNodeInfo(vnode_id, jbof_address, state=JOINING)
            self.vnodes[vnode_id] = info
        info.state = JOINING
        old_ring = self.master_ring()
        new_ring = old_ring.with_vnode(VNode(vnode_id, jbof_address))
        # Publish states so the joining vnode refuses client traffic.
        self._broadcast()

        tasks = self._copy_tasks_for_gain(old_ring, new_ring, [vnode_id])
        mirrored = yield from self._run_copy_tasks(tasks)

        info.state = RUNNING
        self.ring_version += 1
        self._broadcast()
        self._end_mirrors(mirrored)
        self.membership_events.append((self.sim.now, "join_end", vnode_id))

    def leave_vnode(self, vnode_id: str):
        """Generator: voluntary leave (§3.8.1)."""
        self.membership_events.append((self.sim.now, "leave_start", vnode_id))
        info = self.vnodes.get(vnode_id)
        if info is None:
            return
        info.state = LEAVING
        self._broadcast()  # clients stop picking it for reads immediately

        old_ring = self.master_ring()
        new_ring = old_ring.without_vnode(vnode_id)
        gainers = self._gaining_vnodes(old_ring, new_ring, vnode_id)
        tasks = self._copy_tasks_for_gain(old_ring, new_ring, gainers,
                                          exclude_source=vnode_id)
        mirrored = yield from self._run_copy_tasks(tasks)

        del self.vnodes[vnode_id]
        self.ring_version += 1
        self._broadcast()
        self._end_mirrors(mirrored)
        self.membership_events.append((self.sim.now, "leave_end", vnode_id))

    def add_vnode(self, jbof_address: str, suffix: str):
        """Generator: provision a fresh vnode on a JBOF, then join it.

        Scale-out primitive for the scenario library's autoscaler: the
        node is asked over RPC (``vnode_create``) to build an empty
        partition on its least-loaded SSD; the standard join flow then
        COPYs the stipulated ranges in.  Returns the new vnode id, or
        None when the node had no free SSD region.
        """
        vnode_id = yield self.rpc.call(jbof_address, "vnode_create",
                                       {"suffix": suffix}, 64,
                                       timeout_us=5e6)
        if not vnode_id:
            return None
        yield from self.join_vnode(vnode_id, jbof_address)
        return vnode_id

    def remove_vnode(self, vnode_id: str):
        """Generator: gracefully retire a vnode (scale-in primitive).

        A voluntary leave migrates the data away; the hosting node is
        then told to drop the runtime (``vnode_retire``) so the
        partition's resources are genuinely released.
        """
        info = self.vnodes.get(vnode_id)
        if info is None:
            return
        jbof_address = info.jbof_address
        yield from self.leave_vnode(vnode_id)
        self.rpc.notify(jbof_address, "vnode_retire", vnode_id, 32)

    def register_joining_jbof(self, node: JBOFNode) -> None:
        """Track a JBOF whose vnodes must *join* before serving.

        Unlike :meth:`register_jbof` (bootstrap: vnodes are born
        RUNNING), a node provisioned mid-run starts with every vnode
        JOINING; the caller drives :meth:`join_vnode` for each so the
        ranges are COPY'd in before the ring serves from them.
        """
        self.register_jbof(node)
        for vnode_id in sorted(node.vnodes):
            self.vnodes[vnode_id].state = JOINING

    def mark_alive(self, jbof_address: str) -> None:
        """Re-arm failure detection for a revived JBOF.

        A detected failure parks the address in the failed set so the
        monitor fires once per incident; a node that was healed and is
        rejoining must leave that set (and get a fresh heartbeat
        stamp) or its *next* crash would go undetected.
        """
        self._failed.discard(jbof_address)
        self._last_heartbeat[jbof_address] = self.sim.now

    def forget_jbof(self, jbof_address: str) -> None:
        """Stop failure-monitoring a deliberately retired JBOF.

        Scale-in stops a node's heartbeats on purpose; without this
        the monitor would declare a (vnode-less) failure and pollute
        the membership event log with a phantom incident.
        """
        self._last_heartbeat.pop(jbof_address, None)
        self._failed.discard(jbof_address)

    def handle_jbof_failure(self, jbof_address: str):
        """Generator: involuntary leave of every vnode on a dead JBOF."""
        self.membership_events.append((self.sim.now, "failure", jbof_address))
        dead = [i.vnode_id for i in self.vnodes.values()
                if i.jbof_address == jbof_address]
        if not dead:
            return
        old_ring = self.master_ring()
        new_ring = old_ring
        for vnode_id in dead:
            new_ring = new_ring.without_vnode(vnode_id)
            del self.vnodes[vnode_id]
        gainers = []
        for vnode_id in dead:
            gainers.extend(self._gaining_vnodes(old_ring, new_ring, vnode_id))
        gainers = sorted(set(gainers))
        # Gaining vnodes are not yet consistent: mark JOINING so reads
        # fail over to surviving replicas that do hold the data.
        for gainer in gainers:
            if gainer in self.vnodes:
                self.vnodes[gainer].state = JOINING
        self.ring_version += 1
        self._broadcast()

        tasks = self._copy_tasks_for_gain(old_ring, new_ring, gainers,
                                          exclude_source_address=jbof_address)
        mirrored = yield from self._run_copy_tasks(tasks)

        for gainer in gainers:
            if gainer in self.vnodes:
                self.vnodes[gainer].state = RUNNING
        self.ring_version += 1
        self._broadcast()
        self._end_mirrors(mirrored)
        self.membership_events.append((self.sim.now, "recovered",
                                       jbof_address))

    # -- COPY planning ---------------------------------------------------------------------------

    def _gaining_vnodes(self, old_ring: HashRing, new_ring: HashRing,
                        removed_vnode: str) -> List[str]:
        """VNodes whose responsibility grows when ``removed_vnode`` goes."""
        gainers = set()
        for arc in old_ring.owner_ranges(removed_vnode):
            # Merged arcs can span several chain regions; split at the
            # old ring's vnode positions so each sub-arc has one chain.
            for sub_arc in _split_arc(arc, old_ring):
                old_chain = {v.vnode_id
                             for v in old_ring.successors(sub_arc[0],
                                                          self.replication)}
                for vnode in new_ring.successors(sub_arc[0],
                                                 self.replication):
                    if vnode.vnode_id not in old_chain:
                        gainers.add(vnode.vnode_id)
        return sorted(gainers)

    def _copy_tasks_for_gain(self, old_ring: HashRing, new_ring: HashRing,
                             gainers: List[str],
                             exclude_source: Optional[str] = None,
                             exclude_source_address: Optional[str] = None
                             ) -> List[CopyTask]:
        """COPY tasks so each gainer receives its newly-owned arcs.

        Sources are the *old-ring tails* of each arc's chain (§3.8.1),
        skipping excluded (leaving/dead) vnodes.
        """
        tasks: List[CopyTask] = []
        for gainer in gainers:
            info = self.vnodes.get(gainer)
            if info is None:
                continue
            per_source: Dict[str, List[Tuple[int, int]]] = {}
            for arc in new_ring.owner_ranges(gainer):
                # A new-ring arc can span several *old-ring* arcs when
                # vnodes were removed; each sub-arc may have had a
                # different chain, so split before picking sources.
                for sub_arc in _split_arc(arc, old_ring):
                    old_chain = old_ring.successors(sub_arc[0],
                                                    self.replication)
                    if any(v.vnode_id == gainer for v in old_chain):
                        continue  # already held this sub-arc
                    source = None
                    for candidate in reversed(old_chain):  # tail first
                        if candidate.vnode_id == exclude_source:
                            continue
                        if candidate.jbof_address == exclude_source_address:
                            continue
                        source = candidate
                        break
                    if source is None:
                        continue
                    per_source.setdefault(source.vnode_id, []).append(sub_arc)
            for src_vnode, arcs in per_source.items():
                src_info = self.vnodes.get(src_vnode)
                src_address = (src_info.jbof_address if src_info is not None
                               else old_ring.vnodes[src_vnode].jbof_address)
                tasks.append(CopyTask(src_vnode, src_address, gainer,
                                      info.jbof_address, arcs))
        return tasks

    def _run_copy_tasks(self, tasks: List[CopyTask]):
        """Generator: drive COPY tasks on their source JBOFs, over RPC.

        The control plane never calls into node objects at runtime —
        each source is told to start mirroring (``mirror_begin``) and
        then runs the COPY itself (``do_copy``).  Per-pair FIFO
        delivery guarantees the mirror is active before the source
        starts scanning, so writes committed during the COPY are never
        lost.  All COPYs are issued up front and awaited together,
        preserving the parallel schedule of the earlier in-process
        implementation.

        Mirrors are deliberately NOT torn down here.  The destination
        only becomes a serving chain member at the caller's ring-
        version bump, and a write committed on a source *between the
        end of the scan and that ring switch* must still be forwarded
        — ending the mirror at scan end silently drops such writes on
        the new replica, which then serves stale data as a clean chain
        member (a lost acked write).  Callers tear mirrors down with
        :meth:`_end_mirrors` after broadcasting the new ring; the
        broadcast and the teardown share the control plane's per-node
        connection, so a source adopts the new ring (and starts
        NACKing old-epoch writes) before its mirror disappears.

        Returns the tasks whose mirrors were started (skipping dead
        sources), i.e. the teardown worklist for :meth:`_end_mirrors`.
        """
        started = []
        calls = []
        for task in tasks:
            if task.src_address in self._failed:
                continue  # dead source: failure handling re-plans
            body = {"src_vnode": task.src_vnode,
                    "arcs": [tuple(arc) for arc in task.arcs],
                    "dst_vnode": task.dst_vnode,
                    "dst_address": task.dst_address}
            self.rpc.notify(task.src_address, "mirror_begin", body, 64)
            started.append(task)
            calls.append((task, self.rpc.call(
                task.src_address, "do_copy", body, 64, timeout_us=5e6)))
        for _task, call in calls:
            try:
                yield call
            except Exception:
                pass  # a source died mid-copy; failure handling re-plans
        return started

    def _end_mirrors(self, tasks: List[CopyTask]) -> None:
        """Tear down migration mirrors once the new ring is published."""
        for task in tasks:
            self.rpc.notify(task.src_address, "mirror_end",
                            {"src_vnode": task.src_vnode,
                             "dst_vnode": task.dst_vnode}, 32)

    def __repr__(self):
        return "<ControlPlane v%d vnodes=%d>" % (self.ring_version,
                                                 len(self.vnodes))
