"""The LEED per-partition data store (§3.2, §3.3).

One store owns a key range on one SSD partition: a circular key log
(segments serialized as bucket arrays), a circular value log, and the
in-DRAM SegTbl.  Commands follow the paper's NVMe access counts —
GET/PUT/DEL issue 2/3/2 device accesses — and PUT overlaps the
key-segment read with the value-log write so the extra access adds
only ~10 µs of latency (Fig. 11).

The store's design trades I/O bandwidth for DRAM (principle P1): the
only per-object memory cost is amortized across a whole segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.circular_log import CircularLog, LogFullError, LogRangeError
from repro.core.segment import (
    KeyItem,
    Segment,
    SegmentFullError,
    TOMBSTONE_VLEN,
    key_hash,
    pack_value_entry,
    segment_of,
    unpack_value_entry,
    value_entry_size,
)
from repro.core.segtbl import SegTbl
from repro.hw.cpu import CYCLE_COSTS, Core
from repro.hw.dram import Dram
from repro.hw.ssd import NVMeSSD
from repro.sim.core import Simulator

#: Result statuses.
OK = "ok"
NOT_FOUND = "not_found"
STORE_FULL = "store_full"


@dataclass
class OpResult:
    """Outcome and latency breakdown of one data-store command."""

    status: str
    value: Optional[bytes] = None
    total_us: float = 0.0
    ssd_us: float = 0.0
    cpu_us: float = 0.0
    nvme_accesses: int = 0

    @property
    def ok(self) -> bool:
        return self.status == OK


@dataclass
class StoreConfig:
    """Geometry and policy knobs for one store partition."""

    #: Segments in the key space of this (virtual) node.
    num_segments: int = 1024
    #: Max overflow buckets per segment (the paper's M).
    max_chain: int = 4
    #: Key-log region size in bytes (block multiple).
    key_log_bytes: int = 4 << 20
    #: Value-log region size in bytes (block multiple).
    value_log_bytes: int = 28 << 20
    #: Fill fraction that triggers compaction.
    compact_high_watermark: float = 0.80
    #: Fill fraction compaction tries to reach before stopping.
    compact_low_watermark: float = 0.60
    #: Retries for optimistic reads racing compaction.
    max_get_retries: int = 4
    #: Fraction of each log kept free for compaction relocations:
    #: client writes fail with STORE_FULL before eating the headroom
    #: the compactor needs to make progress (no reclaim deadlock).
    compaction_reserve_fraction: float = 0.06

    def total_bytes(self) -> int:
        """Combined on-SSD footprint of one partition's two logs."""
        return self.key_log_bytes + self.value_log_bytes


@dataclass
class StoreStats:
    """Cumulative per-store statistics."""

    gets: int = 0
    puts: int = 0
    dels: int = 0
    hits: int = 0
    misses: int = 0
    get_retries: int = 0
    key_log_garbage_bytes: int = 0
    value_garbage_bytes: int = 0
    ssd_time_us: float = 0.0
    cpu_time_us: float = 0.0
    op_latency_us: Dict[str, float] = field(default_factory=lambda: {
        "get": 0.0, "put": 0.0, "del": 0.0})

    def mean_latency_us(self, op: str, count: int) -> float:
        """Average latency of one command type over ``count`` ops."""
        return self.op_latency_us[op] / count if count else 0.0


#: Signature for swap-aware value placement: (store, key, value) ->
#: (ssd_id, value_log).  The default places values on the home SSD.
ValueRouter = Callable[["LeedDataStore", bytes, bytes], tuple]


class LeedDataStore:
    """One LEED partition: key log + value log + SegTbl."""

    #: This store's commands accept a ``trace=`` kwarg (the engine
    #: checks this before passing one; baseline stores do not set it).
    TRACE_AWARE = True

    def __init__(self, sim: Simulator, ssd: NVMeSSD, config: StoreConfig,
                 region_offset: int = 0, dram: Optional[Dram] = None,
                 core: Optional[Core] = None, name: str = "store",
                 store_id: int = 0):
        self.sim = sim
        self.ssd = ssd
        self.config = config
        self.name = name
        #: Identity of this store among co-located stores on one JBOF.
        #: Written into key items (the paper's per-entry SSD identifier,
        #: §3.6 — one partition per SSD on the Stingray, so store id and
        #: SSD id coincide there) and into value entries as the owner
        #: tag used by swap merge-back.
        self.store_id = store_id
        self.core = core
        block = ssd.block_size
        if config.key_log_bytes % block or config.value_log_bytes % block:
            raise ValueError("log sizes must be multiples of the %dB block"
                             % block)
        self.key_log = CircularLog(ssd, region_offset, config.key_log_bytes,
                                   name=name + ".klog")
        self.value_log = CircularLog(ssd, region_offset + config.key_log_bytes,
                                     config.value_log_bytes,
                                     name=name + ".vlog")
        self.segtbl = SegTbl(sim, config.num_segments, dram=dram,
                             name=name + ".segtbl")
        self.stats = StoreStats()
        #: Pluggable value placement (replaced by the swap mechanism).
        self.value_router: ValueRouter = self._home_value_router
        #: Peer stores on co-located SSDs, keyed by ssd_id — lets GETs
        #: follow a swapped value's ssd_id to the right device (§3.6).
        self.peer_value_logs: Dict[int, CircularLog] = {store_id: self.value_log}
        #: Co-located stores by store_id (self included) — the value-log
        #: compactor resolves swapped entries' owners through this map.
        self.peer_stores: Dict[int, "LeedDataStore"] = {store_id: self}
        #: Live object count (for occupancy reporting).
        self.live_objects = 0
        #: Decoded-segment cache for the fused fast path, keyed by
        #: key-log virtual offset (append-only: a virtual offset's
        #: content never changes, so no invalidation is needed beyond
        #: the size cap).  Holds ``(segment, scan_items)``; cached
        #: segments are read-only to their users — writers always
        #: unpack a private copy.  Device timing is still charged in
        #: full on a hit; only the decode compute is skipped.
        self._seg_cache: Dict[int, tuple] = {}

    #: Bound on the decoded-segment cache (entries, not bytes).
    SEG_CACHE_MAX = 8192

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _home_value_router(store: "LeedDataStore", key: bytes,
                           value: bytes) -> tuple:
        return store.store_id, store.value_log

    def _value_log_for(self, holder_store_id: int) -> CircularLog:
        return self.peer_value_logs[holder_store_id]

    def _charge_cpu(self, cycles: int):
        """Generator: account CPU work (runs on the bound core if any)."""
        if self.core is not None:
            yield from self.core.execute(cycles)
        else:
            yield self.sim.timeout(cycles / 3.0e3)  # 3 GHz default

    def _read_segment(self, offset: int, chain_len: int, trace=None):
        """Generator: fetch and deserialize a segment from the key log."""
        blob = yield from self.key_log.read(
            offset, chain_len * self.key_log.block_size, trace=trace)
        return Segment.unpack(blob, self.key_log.block_size)

    def _log_reserve_bytes(self, log: CircularLog) -> int:
        """Headroom kept free for the compactor on ``log``.

        At least a couple of max-length segments so relocation can
        always land, but never so much that it sits below the
        compaction watermark (which would deadlock tiny test logs).
        """
        floor = 2 * self.config.max_chain * log.block_size
        fraction = int(log.size * self.config.compaction_reserve_fraction)
        return min(max(fraction, floor), log.size // 4)

    def _write_segment(self, segment: Segment, enforce_reserve: bool = False,
                       trace=None):
        """Generator: append a segment and repoint the SegTbl.

        Returns the new (offset, chain_len).  The old location becomes
        key-log garbage.  With ``enforce_reserve`` the append fails
        once it would eat into the compactor's headroom (client writes
        set this; compaction itself does not).
        """
        old = self.segtbl.location(segment.seg_id)
        blob = segment.pack(self.key_log.block_size,
                            head=self.key_log.head % (1 << 32),
                            tail=self.key_log.tail % (1 << 32))
        if enforce_reserve and (self.key_log.free_bytes - len(blob)
                                < self._log_reserve_bytes(self.key_log)):
            raise LogFullError("%s: write would eat compaction reserve"
                               % self.key_log.name)
        offset = yield from self.key_log.append_blocks(blob, trace=trace)
        self.segtbl.update(segment.seg_id, offset, segment.chain_len)
        if old is not None:
            self.stats.key_log_garbage_bytes += old[1] * self.key_log.block_size
        return offset, segment.chain_len

    # -- commands ---------------------------------------------------------------------

    def get(self, key: bytes, trace=None):
        """Generator: GET — SegTbl lookup, segment read, value read.

        Optimistic with respect to compaction: if the segment or value
        moved underneath us (LogRangeError / key mismatch) the lookup
        restarts from the SegTbl, up to ``max_get_retries`` times.
        ``trace`` (a :class:`repro.obs.spans.TraceContext`) attributes
        the device accesses to the request's trace.
        """
        if (trace is None and self.core is not None
                and self.core.fast_path and self.ssd.fast_path):
            return (yield from self._get_fused(key))
        start = self.sim.now
        cpu_us = ssd_us = 0.0
        accesses = 0
        self.stats.gets += 1
        khash = key_hash(key)
        seg_id = khash % self.config.num_segments

        t0 = self.sim.now
        yield from self._charge_cpu(CYCLE_COSTS["hash_lookup"])
        cpu_us += self.sim.now - t0

        result: Optional[OpResult] = None
        for attempt in range(self.config.max_get_retries):
            if attempt:
                self.stats.get_retries += 1
            location = self.segtbl.location(seg_id)
            if location is None:
                result = OpResult(NOT_FOUND)
                break
            offset, chain_len = location
            t0 = self.sim.now
            try:
                segment = yield from self._read_segment(offset, chain_len,
                                                        trace)
            except LogRangeError:
                ssd_us += self.sim.now - t0
                continue
            ssd_us += self.sim.now - t0
            accesses += 1

            t0 = self.sim.now
            scan_cycles = CYCLE_COSTS["bucket_scan_per_key"] * max(
                sum(len(b.items) for b in segment.buckets), 1)
            yield from self._charge_cpu(scan_cycles)
            cpu_us += self.sim.now - t0

            item = segment.find(key, khash)
            if item is None or item.is_tombstone:
                result = OpResult(NOT_FOUND)
                break

            entry_size = value_entry_size(len(key), item.vlen)
            value_log = self._value_log_for(item.ssd_id)
            t0 = self.sim.now
            try:
                blob = yield from value_log.read(item.voffset, entry_size,
                                                 trace=trace)
            except LogRangeError:
                ssd_us += self.sim.now - t0
                continue
            ssd_us += self.sim.now - t0
            accesses += 1

            _seg_id, stored_key, value, _size, _owner = unpack_value_entry(blob)
            if stored_key != key:
                # The value log was compacted between the segment read and
                # the value read; the fresh SegTbl view will resolve it.
                continue
            result = OpResult(OK, value=value)
            break
        if result is None:
            result = OpResult(NOT_FOUND)

        if result.ok:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = accesses
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["get"] += result.total_us
        return result

    def _get_fused(self, key: bytes):
        """Generator: analytic GET (fast datapath) — one timeout event."""
        result, done = self.get_at(key)
        if done > self.sim.now:
            yield self.sim.timeout(done - self.sim.now)
        return result

    def get_at(self, key: bytes):
        """Analytic GET (fast datapath): returns ``(OpResult, done_us)``.

        Mirrors :meth:`get` stage for stage, but chains each stage's
        completion time through the analytic core/SSD models
        synchronously (:meth:`Core.charge_at`,
        :meth:`CircularLog.read_at`) without yielding — the caller
        sleeps (or schedules a completion callback) for ``done_us``.
        Validation happens at the submission instant, so a compaction
        cannot move data mid-flight; the retry loop is kept for
        submission-time stale SegTbl entries.  All statistics are
        recorded here, stamped as of the completion time.
        """
        start = self.sim.now
        cpu_us = ssd_us = 0.0
        accesses = 0
        self.stats.gets += 1
        khash = key_hash(key)
        seg_id = khash % self.config.num_segments

        at = self.core.charge_at(CYCLE_COSTS["hash_lookup"], start)
        cpu_us += at - start

        result: Optional[OpResult] = None
        for attempt in range(self.config.max_get_retries):
            if attempt:
                self.stats.get_retries += 1
            location = self.segtbl.location(seg_id)
            if location is None:
                result = OpResult(NOT_FOUND)
                break
            offset, chain_len = location
            nbytes = chain_len * self.key_log.block_size
            cached = self._seg_cache.get(offset)
            try:
                if cached is not None:
                    done = self.key_log.charge_read_at(offset, nbytes, at)
                    segment, scan_items = cached
                else:
                    blob, done = self.key_log.read_at(offset, nbytes, at)
                    segment = Segment.unpack(blob, self.key_log.block_size)
                    scan_items = max(
                        sum(len(b.items) for b in segment.buckets), 1)
                    if len(self._seg_cache) >= self.SEG_CACHE_MAX:
                        self._seg_cache.clear()
                    self._seg_cache[offset] = (segment, scan_items)
            except LogRangeError:
                continue
            ssd_us += done - at
            at = done
            accesses += 1

            scan_cycles = CYCLE_COSTS["bucket_scan_per_key"] * scan_items
            done = self.core.charge_at(scan_cycles, at)
            cpu_us += done - at
            at = done

            item = segment.find(key, khash)
            if item is None or item.is_tombstone:
                result = OpResult(NOT_FOUND)
                break

            entry_size = value_entry_size(len(key), item.vlen)
            value_log = self._value_log_for(item.ssd_id)
            try:
                blob, done = value_log.read_at(item.voffset, entry_size, at)
            except LogRangeError:
                continue
            ssd_us += done - at
            at = done
            accesses += 1

            _seg_id, stored_key, value, _size, _owner = unpack_value_entry(blob)
            if stored_key != key:
                continue
            result = OpResult(OK, value=value)
            break
        if result is None:
            result = OpResult(NOT_FOUND)

        if result.ok:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        result.total_us = at - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = accesses
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["get"] += result.total_us
        return result, at

    def multi_get(self, keys, trace=None):
        """Generator: batched GET of several keys (§3.2 read path, vectored).

        Groups the keys by segment, fetches the distinct segments
        through one vectored key-log doorbell
        (:meth:`CircularLog.read_multi`), then fetches all value
        entries through one vectored doorbell per holding SSD.
        Returns a list of :class:`OpResult` in input order.

        Keys that race compaction (``LogRangeError`` or a stale value
        entry) fall back to the single-key retry path of :meth:`get`.

        Access accounting: each key's ``nvme_accesses`` reports its
        *logical* accesses (2 for a hit, matching :meth:`get`), while
        the device-level ``SSDStats.reads_completed`` reflects the
        deduplicated physical I/Os — one read per distinct segment
        plus one per value entry.
        """
        keys = list(keys)
        results: list = [None] * len(keys)
        if not keys:
            return results
        start = self.sim.now
        ssd_us = 0.0

        khashes = [key_hash(key) for key in keys]
        seg_ids = [khash % self.config.num_segments for khash in khashes]
        yield from self._charge_cpu(CYCLE_COSTS["hash_lookup"] * len(keys))

        distinct = []  # (seg_id, offset, chain_len), first-appearance order
        seen = set()
        for index, seg_id in enumerate(seg_ids):
            if seg_id in seen:
                continue
            seen.add(seg_id)
            location = self.segtbl.location(seg_id)
            if location is None:
                continue
            distinct.append((seg_id, location[0], location[1]))
        for index, seg_id in enumerate(seg_ids):
            if self.segtbl.location(seg_id) is None:
                results[index] = OpResult(NOT_FOUND)

        t0 = self.sim.now
        try:
            blobs = yield from self.key_log.read_multi(
                [(offset, chain_len * self.key_log.block_size)
                 for _seg_id, offset, chain_len in distinct], trace=trace)
        except LogRangeError:
            # A compaction moved a segment under the batch; resolve every
            # unresolved key through the single-key retry path.
            for index, key in enumerate(keys):
                if results[index] is None:
                    results[index] = yield from self.get(key, trace)
                else:
                    self.stats.gets += 1
                    self.stats.misses += 1
            return results
        ssd_us += self.sim.now - t0
        segments = {seg_id: Segment.unpack(blob, self.key_log.block_size)
                    for (seg_id, _offset, _chain), blob in zip(distinct, blobs)}

        # Scan charge: each key pays for scanning its own segment, the
        # same cost model as single-key GETs.
        scan_items = 0
        for index, seg_id in enumerate(seg_ids):
            if results[index] is None:
                scan_items += max(
                    sum(len(b.items) for b in segments[seg_id].buckets), 1)
        if scan_items:
            yield from self._charge_cpu(
                CYCLE_COSTS["bucket_scan_per_key"] * scan_items)

        pending = []  # (index, item)
        for index, key in enumerate(keys):
            if results[index] is not None:
                continue
            item = segments[seg_ids[index]].find(key, khashes[index])
            if item is None or item.is_tombstone:
                results[index] = OpResult(NOT_FOUND, nvme_accesses=1)
            else:
                pending.append((index, item))

        by_holder: Dict[int, list] = {}
        for index, item in pending:
            by_holder.setdefault(item.ssd_id, []).append((index, item))
        fallback = []
        for holder in sorted(by_holder):
            entries = by_holder[holder]
            value_log = self._value_log_for(holder)
            extents = [(item.voffset,
                        value_entry_size(len(keys[index]), item.vlen))
                       for index, item in entries]
            t0 = self.sim.now
            try:
                value_blobs = yield from value_log.read_multi(extents,
                                                              trace=trace)
            except LogRangeError:
                ssd_us += self.sim.now - t0
                fallback.extend(index for index, _item in entries)
                continue
            ssd_us += self.sim.now - t0
            for (index, _item), blob in zip(entries, value_blobs):
                _sid, stored_key, value, _sz, _own = unpack_value_entry(blob)
                if stored_key != keys[index]:
                    fallback.append(index)
                else:
                    results[index] = OpResult(OK, value=value, nvme_accesses=2)

        elapsed = self.sim.now - start
        for index, result in enumerate(results):
            if result is None:
                continue
            self.stats.gets += 1
            if result.ok:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
            result.total_us = elapsed
            result.ssd_us = ssd_us
            result.cpu_us = elapsed - ssd_us
            self.stats.ssd_time_us += ssd_us
            self.stats.cpu_time_us += result.cpu_us
            self.stats.op_latency_us["get"] += elapsed
        for index in fallback:
            results[index] = yield from self.get(keys[index], trace)
        return results

    def put(self, key: bytes, value: bytes, trace=None):
        """Generator: PUT — 3 NVMe accesses, first two overlapped.

        The value-log write starts immediately (its offset is reserved
        synchronously) and runs in parallel with the key-segment read;
        the updated segment is then appended (§3.3).  ``trace``
        attributes the device accesses to the request's trace.
        """
        if not value:
            raise ValueError("empty values are reserved as deletion markers")
        start = self.sim.now
        cpu_us = ssd_us = 0.0
        self.stats.puts += 1
        khash = key_hash(key)
        seg_id = khash % self.config.num_segments

        t0 = self.sim.now
        yield from self._charge_cpu(CYCLE_COSTS["hash_lookup"])
        cpu_us += self.sim.now - t0

        yield self.segtbl.lock(seg_id)
        try:
            target_store_id, value_log = self.value_router(self, key, value)
            entry = pack_value_entry(seg_id, key, value, owner_id=self.store_id)
            reserve = self._log_reserve_bytes(value_log)
            if value_log.free_bytes - len(entry) < reserve:
                return self._finish_put(OpResult(STORE_FULL), start, ssd_us,
                                        cpu_us, 0)
            try:
                voffset = value_log.reserve(len(entry))
            except LogFullError:
                return self._finish_put(OpResult(STORE_FULL), start, ssd_us,
                                        cpu_us, 0)

            t0 = self.sim.now
            value_write = self.sim.process(
                value_log.write_reserved(voffset, entry, trace=trace),
                name=self.name + ".vwrite")
            location = self.segtbl.location(seg_id)
            if location is None:
                segment = Segment(seg_id)
                accesses = 2  # value write + segment write
            else:
                segment = yield from self._read_segment(location[0],
                                                        location[1], trace)
                accesses = 3
            yield value_write
            ssd_us += self.sim.now - t0

            t0 = self.sim.now
            yield from self._charge_cpu(CYCLE_COSTS["bucket_update"])
            cpu_us += self.sim.now - t0

            previous = segment.find(key, khash)
            is_new_object = previous is None or previous.is_tombstone
            if is_new_object:
                self.live_objects += 1
            else:
                self.stats.value_garbage_bytes += value_entry_size(
                    len(key), previous.vlen)
            try:
                segment.upsert(KeyItem(key, len(value), voffset,
                                       ssd_id=target_store_id, khash=khash),
                               self.key_log.block_size, self.config.max_chain)
            except SegmentFullError:
                if is_new_object:
                    self.live_objects -= 1
                return self._finish_put(OpResult(STORE_FULL), start, ssd_us,
                                        cpu_us, accesses - 1)

            t0 = self.sim.now
            try:
                yield from self._write_segment(segment, enforce_reserve=True,
                                               trace=trace)
            except LogFullError:
                ssd_us += self.sim.now - t0
                return self._finish_put(OpResult(STORE_FULL), start, ssd_us,
                                        cpu_us, accesses - 1)
            ssd_us += self.sim.now - t0
            return self._finish_put(OpResult(OK), start, ssd_us, cpu_us,
                                    accesses)
        finally:
            self.segtbl.unlock(seg_id)

    def _finish_put(self, result: OpResult, start: float, ssd_us: float,
                    cpu_us: float, accesses: int) -> OpResult:
        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = accesses
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["put"] += result.total_us
        return result

    def delete(self, key: bytes, trace=None):
        """Generator: DEL — read segment, write tombstone (2 accesses)."""
        start = self.sim.now
        cpu_us = ssd_us = 0.0
        accesses = 0
        self.stats.dels += 1
        khash = key_hash(key)
        seg_id = khash % self.config.num_segments

        t0 = self.sim.now
        yield from self._charge_cpu(CYCLE_COSTS["hash_lookup"])
        cpu_us += self.sim.now - t0

        yield self.segtbl.lock(seg_id)
        try:
            location = self.segtbl.location(seg_id)
            if location is None:
                result = OpResult(NOT_FOUND)
            else:
                t0 = self.sim.now
                segment = yield from self._read_segment(location[0],
                                                        location[1], trace)
                ssd_us += self.sim.now - t0
                accesses += 1
                item = segment.find(key, khash)
                if item is None or item.is_tombstone:
                    result = OpResult(NOT_FOUND)
                else:
                    self.stats.value_garbage_bytes += value_entry_size(
                        len(key), item.vlen)
                    self.live_objects -= 1
                    item.vlen = TOMBSTONE_VLEN
                    item.voffset = 0
                    t0 = self.sim.now
                    yield from self._charge_cpu(CYCLE_COSTS["bucket_update"])
                    cpu_us += self.sim.now - t0
                    t0 = self.sim.now
                    try:
                        yield from self._write_segment(segment,
                                                       enforce_reserve=True,
                                                       trace=trace)
                        result = OpResult(OK)
                    except LogFullError:
                        result = OpResult(STORE_FULL)
                    ssd_us += self.sim.now - t0
                    accesses += 1
        finally:
            self.segtbl.unlock(seg_id)

        result.total_us = self.sim.now - start
        result.ssd_us = ssd_us
        result.cpu_us = result.total_us - ssd_us
        result.nvme_accesses = accesses
        self.stats.ssd_time_us += ssd_us
        self.stats.cpu_time_us += result.cpu_us
        self.stats.op_latency_us["del"] += result.total_us
        return result

    # -- scans (COPY primitive substrate, §3.8) -----------------------------------------

    def scan(self, predicate=None, batch_size: int = 32, visit=None,
             stamp=None):
        """Generator: iterate live (key, value) pairs via real SSD reads.

        Each segment is locked while its items are copied out, making
        the scan mutually exclusive with PUT/DEL on that segment —
        exactly the COPY semantics of §3.8.  ``predicate(key)`` filters
        keys; ``visit(batch)`` (when given) receives lists of pairs as
        they are produced, otherwise all pairs are returned at the end.

        ``stamp(key)``, when given, is evaluated in the same event as
        the value read and batch items become ``(key, value, stamp)``
        triples.  COPY uses this to version each pair *at read time*:
        a pair can sit in the outgoing batch buffer while the key takes
        a newer write (which the migration mirror forwards separately),
        and only a read-time stamp lets the destination tell the
        buffered snapshot is stale.
        """
        collected = []
        batch = []
        for seg_id in list(self.segtbl.existing_segments()):
            yield self.segtbl.lock(seg_id)
            try:
                location = self.segtbl.location(seg_id)
                if location is None:
                    continue
                segment = yield from self._read_segment(*location)
                for item in segment.live_items():
                    if predicate is not None and not predicate(item.key):
                        continue
                    entry_size = value_entry_size(len(item.key), item.vlen)
                    value_log = self._value_log_for(item.ssd_id)
                    try:
                        blob = yield from value_log.read(item.voffset,
                                                         entry_size)
                    except LogRangeError:
                        continue
                    _sid, stored_key, value, _sz, _own = unpack_value_entry(blob)
                    if stored_key != item.key:
                        continue
                    if stamp is None:
                        batch.append((stored_key, value))
                    else:
                        batch.append((stored_key, value, stamp(stored_key)))
                    if visit is not None and len(batch) >= batch_size:
                        yield from visit(batch)
                        batch = []
            finally:
                self.segtbl.unlock(seg_id)
        if visit is not None:
            if batch:
                yield from visit(batch)
            return None
        collected.extend(batch)
        return collected

    # -- occupancy & maintenance signals ----------------------------------------------

    def key_log_pressure(self) -> float:
        """Key-log fill fraction (the compaction trigger signal)."""
        return self.key_log.fill_fraction()

    def value_log_pressure(self) -> float:
        """Value-log fill fraction (the compaction trigger signal)."""
        return self.value_log.fill_fraction()

    def needs_key_compaction(self) -> bool:
        """True when the key log is past its high watermark."""
        return self.key_log.fill_fraction() >= self.config.compact_high_watermark

    def needs_value_compaction(self) -> bool:
        """True when the value log is past its high watermark."""
        return self.value_log.fill_fraction() >= self.config.compact_high_watermark

    def __repr__(self):
        return ("<LeedDataStore %s live=%d klog=%.0f%% vlog=%.0f%%>"
                % (self.name, self.live_objects,
                   100 * self.key_log.fill_fraction(),
                   100 * self.value_log.fill_fraction()))
