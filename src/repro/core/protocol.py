"""Wire-level message bodies exchanged between clients and JBOFs.

Sizes are modeled explicitly (the fabric charges serialization per
byte), so each body knows its wire footprint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Fixed per-command header: op, ids, ring version, hop counter, tenant.
KV_HEADER_BYTES = 24


class ReadPolicy(str, enum.Enum):
    """Replica choice for GETs.

    * ``CRRS`` — the replica with the most available tokens, LEED's
      load-aware replica selection (§3.7);
    * ``TAIL`` — the chain tail only, classic chain replication
      (the FAWN-KV baseline);
    * ``ANY`` — round robin over serving replicas (a sharded KVell
      deployment).

    The enum subclasses :class:`str`, so ``ReadPolicy.TAIL == "tail"``
    holds and existing string comparisons keep working.  Passing bare
    strings (``"crrs"`` | ``"tail"`` | ``"any"``) where a policy is
    expected is **deprecated**: they are still coerced by
    :meth:`coerce`, but new code should pass the enum members.
    """

    CRRS = "crrs"
    TAIL = "tail"
    ANY = "any"

    @classmethod
    def coerce(cls, value: Optional[object]) -> Optional["ReadPolicy"]:
        """Normalize a policy argument.

        ``None`` passes through (callers apply their own default);
        members pass through; strings are coerced (deprecated spelling,
        kept for one release).  Anything else raises ``ValueError``
        listing the valid policies.
        """
        if value is None or isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                "invalid read policy %r; valid policies: %s"
                % (value, ", ".join(policy.value for policy in cls)))

    def __str__(self) -> str:
        return self.value

#: Statuses carried by KVReply.
STATUS_OK = "ok"
STATUS_NOT_FOUND = "not_found"
STATUS_STORE_FULL = "store_full"
STATUS_NACK = "nack"          # view mismatch; refresh ring and retry
STATUS_UNAVAILABLE = "unavailable"  # vnode not serving (JOINING/LEAVING)
STATUS_OVERLOADED = "overloaded"    # waiting queue overflow; retry later


@dataclass
class KVRequest:
    """A client key-value command addressed to one vnode in a chain."""

    op: str                      # "get" | "put" | "del"
    key: bytes
    value: Optional[bytes] = None
    vnode_id: str = ""
    ring_version: int = 0
    hop: int = 0                 # expected chain position of the target
    tenant: str = "default"
    #: Tracing context (:class:`repro.obs.spans.TraceContext`) carried
    #: alongside the command — simulation-side observability, never on
    #: the wire (excluded from :meth:`wire_bytes`).  ``None`` when the
    #: request is unsampled.
    trace: Optional[object] = None
    #: Absolute sim time after which the issuing client has given up
    #: on this attempt.  Replicas drop expired *writes* at the chain
    #: entry and commitment points: a retried write's earlier attempt
    #: surfacing from a congested queue after the client already acked
    #: a newer value would silently roll the key back (a lost acked
    #: write the scenario suite caught).  Rides the fixed-size header
    #: like ``trace`` — excluded from :meth:`wire_bytes`.
    deadline_us: Optional[float] = None

    def wire_bytes(self) -> int:
        """Bytes this command occupies on the wire."""
        return (KV_HEADER_BYTES + len(self.key)
                + (len(self.value) if self.value else 0))


@dataclass
class KVReply:
    """Response to a KVRequest, with the piggybacked token allocation."""

    status: str
    value: Optional[bytes] = None
    #: Tokens the serving partition allocates to this tenant (§3.5).
    tokens: int = 0
    served_by: str = ""
    #: Fresh ring version hint (set on NACK so clients resync faster).
    ring_version: int = 0

    def wire_bytes(self) -> int:
        """Bytes this reply occupies on the wire."""
        return KV_HEADER_BYTES + (len(self.value) if self.value else 0)


@dataclass
class ChainAck:
    """Backward acknowledgment clearing dirty bits (§3.7)."""

    key: bytes
    vnode_id: str                # the replica this ack is addressed to
    chain: List[str] = field(default_factory=list)
    index: int = 0               # position of vnode_id within chain

    def wire_bytes(self) -> int:
        return 16 + len(self.key)


@dataclass
class CopyBatch:
    """A batch of key-value pairs shipped by the COPY primitive (§3.8)."""

    src_vnode: str
    dst_vnode: str
    pairs: List[Tuple[bytes, bytes]] = field(default_factory=list)
    done: bool = False
    #: Source-side per-key migration stamps, parallel to ``pairs``,
    #: captured when each value was *read* (COPY scan) or committed
    #: (mirror forward).  The destination refuses a pair older than
    #: what it already applied for the key: a scan snapshot can sit in
    #: the batch buffer while the mirror forwards a newer committed
    #: write, and applying the buffered pair afterwards would roll the
    #: key back (a lost acked write the scenario suite caught).  Rides
    #: the per-entry header — excluded from :meth:`wire_bytes`.
    versions: Optional[List[int]] = None

    def wire_bytes(self) -> int:
        return 24 + sum(len(k) + len(v) for k, v in self.pairs)


@dataclass
class AbdQuery:
    """ABD phase-1 query: read a key's logical timestamp at one vnode.

    With ``want_value`` set (read path) the replica also returns its
    stored value, so one round trip yields the ``(stamp, value)`` pair
    the read quorum compares.
    """

    vnode_id: str
    key: bytes
    want_value: bool = False

    def wire_bytes(self) -> int:
        return 16 + len(self.key)


@dataclass
class AbdVote:
    """One replica's answer to an :class:`AbdQuery`."""

    vnode_id: str
    key: bytes
    stamp: Tuple[int, str] = (0, "")
    value: Optional[bytes] = None
    status: str = STATUS_OK

    def wire_bytes(self) -> int:
        return 24 + len(self.key) + (len(self.value) if self.value else 0)


@dataclass
class AbdCommit:
    """ABD phase-2 commit (and read-repair write-back): apply ``value``
    at ``stamp`` unless the replica already holds a newer stamp."""

    vnode_id: str
    op: str                      # "put" | "del"
    key: bytes
    value: Optional[bytes] = None
    stamp: Tuple[int, str] = (0, "")

    def wire_bytes(self) -> int:
        return 24 + len(self.key) + (len(self.value) if self.value else 0)


@dataclass
class Heartbeat:
    """Periodic liveness beacon from a JBOF to the control plane."""

    jbof_address: str
    sent_at_us: float

    def wire_bytes(self) -> int:
        return 24


@dataclass
class MembershipUpdate:
    """Control-plane broadcast of a new ring snapshot."""

    ring_version: int
    vnodes: List[Tuple[str, str]]        # (vnode_id, jbof_address)
    states: List[Tuple[str, str]]        # (vnode_id, state)
    replication: int = 3
    #: Cluster-wide replication protocol name.  Packed into the
    #: existing fixed header (a one-byte tag on the wire), so the
    #: modeled footprint below is unchanged.
    replication_protocol: str = "chain"

    def wire_bytes(self) -> int:
        return 16 + 48 * len(self.vnodes)
