"""Intra-JBOF I/O execution engine (§3.4).

Each SSD partition gets:

* an **active queue** — commands admitted to the store and awaiting
  completion; its capacity, translated into *tokens* via the measured
  per-IO latency, represents the SSD's current serving capability;
* a **waiting queue** — runnable requests received from clients; its
  occupancy is the overload signal used by data swapping (§3.6) and
  flow control (§3.5).

Token cost per command is decided offline from its NVMe access count
(GET/PUT/DEL = 2/3/2, §3.3).  When a command retires, the engine pulls
the next waiting command whose token requirement is satisfied —
strictly FCFS, run-to-completion, no dedicated dispatcher core.

The engine also allocates spare tokens among tenants in a weighted
fashion; the per-tenant allocation is piggybacked on every response
(the server half of the end-to-end flow control of §3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.datastore import LeedDataStore, OpResult
from repro.sim.core import Simulator
from repro.sim.events import Event
from repro.sim.queues import Store

#: Offline-decided token cost per command (== NVMe accesses, §3.3).
TOKEN_COST = {"get": 2, "put": 3, "del": 2, "copy": 4}

#: Default number of tokens an idle partition exposes; derived from the
#: SSD queue depth share of one partition (queue depth 128 at 2-3
#: accesses per command leaves ~96 tokens of admission headroom).
DEFAULT_TOKEN_CAPACITY = 96


@dataclass
class KVCommand:
    """One queued key-value command."""

    op: str
    key: bytes
    value: Optional[bytes] = None
    tenant: str = "default"
    enqueued_at: float = 0.0
    started_at: float = 0.0
    completion: Optional[Event] = None
    #: Trace context of the request this command serves (duck-typed
    #: :class:`repro.obs.spans.TraceContext`; None when unsampled).
    trace: Optional[object] = None
    #: Open ``engine.queue`` span while the command sits in the
    #: waiting queue (internal to the engine).
    queue_span: Optional[object] = None

    @property
    def token_cost(self) -> int:
        return TOKEN_COST[self.op]


@dataclass
class EngineStats:
    """Cumulative engine statistics."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    total_wait_us: float = 0.0
    total_service_us: float = 0.0
    peak_waiting: int = 0

    @property
    def mean_wait_us(self) -> float:
        return self.total_wait_us / self.completed if self.completed else 0.0


class PartitionIOEngine:
    """Token-based executor for one store partition."""

    def __init__(self, sim: Simulator, store: LeedDataStore,
                 token_capacity: int = DEFAULT_TOKEN_CAPACITY,
                 waiting_capacity: int = 64, name: str = "engine"):
        self.sim = sim
        self.store = store
        self.name = name
        self.token_capacity = token_capacity
        self._tokens = token_capacity
        self.waiting: Store = Store(sim, capacity=waiting_capacity,
                                    name=name + ".waitq")
        #: Commands currently executing (the active queue).
        self.active: List[KVCommand] = []
        self.stats = EngineStats()
        #: Relative weights for tenant token allocation.
        self.tenant_weights: Dict[str, float] = {}
        self._release_waiters: List[Event] = []
        self._scheduler = sim.process(self._run(), name=name + ".sched")

    # -- admission ------------------------------------------------------------------

    @property
    def tokens(self) -> int:
        """Tokens not pinned by active commands."""
        return self._tokens

    @property
    def waiting_occupancy(self) -> int:
        return len(self.waiting)

    @property
    def active_occupancy(self) -> int:
        return len(self.active)

    def is_overloaded(self, threshold: int = 8) -> bool:
        """Overload signal: a deep waiting queue (§3.6)."""
        return len(self.waiting) >= threshold

    def submit(self, command: KVCommand) -> Event:
        """Enqueue a command; returns an event with its OpResult.

        Rejects (fails the event) when the waiting queue is full —
        backpressure the flow controller is expected to prevent.
        """
        command.enqueued_at = self.sim.now
        command.completion = Event(self.sim)
        self.stats.submitted += 1
        if command.op not in TOKEN_COST:
            command.completion.fail(ValueError("unknown op %r" % command.op))
            command.completion.defuse()
            return command.completion
        if command.trace is not None:
            command.queue_span = command.trace.child(
                "engine.queue", cat="engine", args={"engine": self.name})
        if not self.waiting.try_put(command):
            self.stats.rejected += 1
            if command.queue_span is not None:
                command.queue_span.finish({"rejected": True})
                command.queue_span = None
            command.completion.fail(OverloadError(
                "%s waiting queue full (%d)" % (self.name, len(self.waiting))))
            command.completion.defuse()
        self.stats.peak_waiting = max(self.stats.peak_waiting,
                                      len(self.waiting))
        return command.completion

    # -- token allocation for flow control --------------------------------------------

    def allocation_for(self, tenant: str, retiring_cost: int = 0) -> int:
        """Tokens this tenant may spend, piggybacked on a response.

        The grant is the *retirement credit* of the completing command
        (1-for-1 replacement keeps a saturated pipe full) plus a
        weighted share of the spare pool, minus backlog pressure from
        the waiting queue (so an over-subscribed partition throttles
        its tenants down instead of queueing without bound).
        """
        spare = self._tokens - len(self.waiting)
        weights = self.tenant_weights
        if weights:
            total = sum(weights.values())
            weight = weights.get(tenant, 1.0)
            spare = int(spare * weight / max(total, weight))
        return max(retiring_cost + spare, 0)

    def set_tenant_weight(self, tenant: str, weight: float) -> None:
        """Register a tenant's share of the spare token pool (§3.5)."""
        self.tenant_weights[tenant] = weight

    # -- execution loop -----------------------------------------------------------------

    def _run(self):
        while True:
            command: KVCommand = yield self.waiting.get()
            if command.queue_span is not None:
                command.queue_span.finish()
                command.queue_span = None
            # Wait for tokens (the active queue's serving capability).
            token_ctx = None
            if command.trace is not None and self._tokens < command.token_cost:
                token_ctx = command.trace.child(
                    "engine.tokens", cat="engine",
                    args={"cost": command.token_cost})
            while self._tokens < command.token_cost:
                yield self._token_released()
            if token_ctx is not None:
                token_ctx.finish()
            self._tokens -= command.token_cost
            command.started_at = self.sim.now
            self.stats.total_wait_us += command.started_at - command.enqueued_at
            self.active.append(command)
            self.sim.process(self._execute(command),
                             name=self.name + ".exec")

    def _token_released(self) -> Event:
        event = Event(self.sim)
        self._release_waiters.append(event)
        return event

    #: Writes hitting a full log wait for compaction and retry (the
    #: paper: "PUTs would be served slowly if the new log entry
    #: generation speed cannot catch up") — up to this many times.
    STORE_FULL_RETRIES = 20
    STORE_FULL_BACKOFF_US = 150.0

    def _invoke(self, command: KVCommand, trace):
        """The store-call generator for one command.

        Only stores that declare ``TRACE_AWARE`` receive the trace
        kwarg — baseline stores (FAWN, KVell) keep their plain
        signatures and simply run untraced below the engine spans.
        """
        kwargs = {}
        if trace is not None:
            kwargs["trace"] = trace
        if command.op == "get":
            return self.store.get(command.key, **kwargs)
        if command.op == "put":
            return self.store.put(command.key, command.value, **kwargs)
        if command.op == "del":
            return self.store.delete(command.key, **kwargs)
        raise ValueError("unknown op %r" % command.op)

    def _execute(self, command: KVCommand):
        exec_ctx = None
        trace = None
        if command.trace is not None:
            exec_ctx = command.trace.child("engine.exec." + command.op,
                                           cat="engine")
            if getattr(self.store, "TRACE_AWARE", False):
                trace = exec_ctx
        try:
            if command.op == "put":
                result = yield from self._invoke(command, trace)
                for _attempt in range(self.STORE_FULL_RETRIES):
                    if result.status != "store_full":
                        break
                    yield self.sim.timeout(self.STORE_FULL_BACKOFF_US)
                    result = yield from self._invoke(command, trace)
            else:
                result = yield from self._invoke(command, trace)
        except Exception as exc:  # surface store errors to the waiter
            if exec_ctx is not None:
                exec_ctx.finish({"error": type(exc).__name__})
            self._retire(command)
            if command.completion and not command.completion.triggered:
                command.completion.fail(exc)
            return
        if exec_ctx is not None:
            exec_ctx.finish({"status": result.status,
                             "nvme_accesses": result.nvme_accesses})
        self._retire(command)
        self.stats.completed += 1
        self.stats.total_service_us += self.sim.now - command.started_at
        if command.completion and not command.completion.triggered:
            command.completion.succeed(result)

    def _retire(self, command: KVCommand) -> None:
        try:
            self.active.remove(command)
        except ValueError:
            pass
        self._tokens += command.token_cost
        waiters, self._release_waiters = self._release_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def __repr__(self):
        return "<PartitionIOEngine %s tokens=%d wait=%d active=%d>" % (
            self.name, self._tokens, len(self.waiting), len(self.active))


class OverloadError(Exception):
    """A command was rejected because the waiting queue was full."""
