"""Intra-JBOF I/O execution engine (§3.4).

Each SSD partition gets:

* an **active queue** — commands admitted to the store and awaiting
  completion; its capacity, translated into *tokens* via the measured
  per-IO latency, represents the SSD's current serving capability;
* a **waiting queue** — runnable requests received from clients; its
  occupancy is the overload signal used by data swapping (§3.6) and
  flow control (§3.5).

Token cost per command is decided offline from its NVMe access count
(GET/PUT/DEL = 2/3/2, §3.3).  When a command retires, the engine pulls
the next waiting command whose token requirement is satisfied —
strictly FCFS, run-to-completion, no dedicated dispatcher core.

The engine also allocates spare tokens among tenants in a weighted
fashion; the per-tenant allocation is piggybacked on every response
(the server half of the end-to-end flow control of §3.5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from repro.core.datastore import LeedDataStore, OpResult
from repro.sim.core import Simulator
from repro.sim.events import Event
from repro.sim.queues import Store

#: Offline-decided token cost per command (== NVMe accesses, §3.3).
TOKEN_COST = {"get": 2, "put": 3, "del": 2, "copy": 4}

#: Default number of tokens an idle partition exposes; derived from the
#: SSD queue depth share of one partition (queue depth 128 at 2-3
#: accesses per command leaves ~96 tokens of admission headroom).
DEFAULT_TOKEN_CAPACITY = 96


@dataclass(eq=False)
class KVCommand:
    """One queued key-value command.

    ``eq=False`` keeps identity comparison/hashing so commands can sit
    in the engine's active *set*.
    """

    op: str
    key: bytes
    value: Optional[bytes] = None
    tenant: str = "default"
    enqueued_at: float = 0.0
    started_at: float = 0.0
    completion: Optional[Event] = None
    #: Trace context of the request this command serves (duck-typed
    #: :class:`repro.obs.spans.TraceContext`; None when unsampled).
    trace: Optional[object] = None
    #: Open ``engine.queue`` span while the command sits in the
    #: waiting queue (internal to the engine).
    queue_span: Optional[object] = None

    @property
    def token_cost(self) -> int:
        return TOKEN_COST[self.op]


@dataclass
class EngineStats:
    """Cumulative engine statistics."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    total_wait_us: float = 0.0
    total_service_us: float = 0.0
    peak_waiting: int = 0

    @property
    def mean_wait_us(self) -> float:
        return self.total_wait_us / self.completed if self.completed else 0.0


class PartitionIOEngine:
    """Token-based executor for one store partition."""

    def __init__(self, sim: Simulator, store: LeedDataStore,
                 token_capacity: int = DEFAULT_TOKEN_CAPACITY,
                 waiting_capacity: int = 64, name: str = "engine",
                 admission_batch: int = 1):
        self.sim = sim
        self.store = store
        self.name = name
        self.token_capacity = token_capacity
        self._tokens = token_capacity
        self.waiting: Store = Store(sim, capacity=waiting_capacity,
                                    name=name + ".waitq")
        #: Commands currently executing (the active queue).  A set:
        #: retirement must not pay O(active) per command.
        self.active: Set[KVCommand] = set()
        self.stats = EngineStats()
        #: Relative weights for tenant token allocation.
        self.tenant_weights: Dict[str, float] = {}
        self._weight_total = 0.0
        self._release_waiters: Deque[Event] = deque()
        #: Max commands pulled from the waiting queue per scheduler
        #: wakeup; runs of >= 2 admitted GETs execute through the
        #: store's vectored ``multi_get`` when it has one.  1 keeps
        #: the exact one-command-per-wakeup schedule.
        self.admission_batch = max(int(admission_batch), 1)
        self._multi_get = getattr(store, "multi_get", None)
        #: Fast path (``fast_datapath``): admit a command synchronously
        #: from :meth:`submit` when nothing is queued ahead of it and
        #: tokens are free — skips the waiting-queue round trip.  FCFS
        #: is preserved: the bypass requires an empty waiting queue and
        #: no command parked mid-admission in the scheduler.
        self.direct_admit = False
        self._admitting = 0
        self._get_at = getattr(store, "get_at", None)
        self._scheduler = sim.process(self._run(), name=name + ".sched")

    # -- admission ------------------------------------------------------------------

    @property
    def tokens(self) -> int:
        """Tokens not pinned by active commands."""
        return self._tokens

    @property
    def waiting_occupancy(self) -> int:
        return len(self.waiting)

    @property
    def active_occupancy(self) -> int:
        return len(self.active)

    def is_overloaded(self, threshold: int = 8) -> bool:
        """Overload signal: a deep waiting queue (§3.6)."""
        return len(self.waiting) >= threshold

    def submit(self, command: KVCommand) -> Event:
        """Enqueue a command; returns an event with its OpResult.

        Rejects (fails the event) when the waiting queue is full —
        backpressure the flow controller is expected to prevent.
        """
        command.enqueued_at = self.sim.now
        command.completion = Event(self.sim)
        self.stats.submitted += 1
        if command.op not in TOKEN_COST:
            command.completion.fail(ValueError("unknown op %r" % command.op))
            command.completion.defuse()
            return command.completion
        if command.trace is not None:
            command.queue_span = command.trace.child(
                "engine.queue", cat="engine", args={"engine": self.name})
        if (self.direct_admit and self._admitting == 0
                and not len(self.waiting)
                and self._tokens >= command.token_cost):
            if command.queue_span is not None:
                command.queue_span.finish()
                command.queue_span = None
            self._tokens -= command.token_cost
            command.started_at = self.sim.now
            self.active.add(command)
            if (command.op == "get" and command.trace is None
                    and self._get_at is not None):
                # Fully fused GET: the store computes the result and
                # completion time synchronously; a single scheduled
                # callback retires the command — no executor process.
                try:
                    result, done = self._get_at(command.key)
                except Exception as exc:
                    self._retire(command)
                    command.completion.fail(exc)
                    return command.completion
                self.sim.schedule(done - self.sim.now,
                                  lambda: self._complete(command, result))
                return command.completion
            self.sim.process(self._execute(command),
                             name=self.name + ".exec")
            return command.completion
        if not self.waiting.try_put(command):
            self.stats.rejected += 1
            if command.queue_span is not None:
                command.queue_span.finish({"rejected": True})
                command.queue_span = None
            command.completion.fail(OverloadError(
                "%s waiting queue full (%d)" % (self.name, len(self.waiting))))
            command.completion.defuse()
        self.stats.peak_waiting = max(self.stats.peak_waiting,
                                      len(self.waiting))
        return command.completion

    # -- token allocation for flow control --------------------------------------------

    def allocation_for(self, tenant: str, retiring_cost: int = 0) -> int:
        """Tokens this tenant may spend, piggybacked on a response.

        The grant is the *retirement credit* of the completing command
        (1-for-1 replacement keeps a saturated pipe full) plus a
        weighted share of the spare pool, minus backlog pressure from
        the waiting queue (so an over-subscribed partition throttles
        its tenants down instead of queueing without bound).
        """
        spare = self._tokens - len(self.waiting)
        weights = self.tenant_weights
        if weights:
            total = self._weight_total
            weight = weights.get(tenant, 1.0)
            spare = int(spare * weight / max(total, weight))
        return max(retiring_cost + spare, 0)

    def set_tenant_weight(self, tenant: str, weight: float) -> None:
        """Register a tenant's share of the spare token pool (§3.5)."""
        self.tenant_weights[tenant] = weight
        self._weight_total = sum(self.tenant_weights.values())

    # -- execution loop -----------------------------------------------------------------

    def _run(self):
        while True:
            command: KVCommand = yield self.waiting.get()
            self._admitting += 1
            if self.admission_batch > 1:
                batch = [command]
                while len(batch) < self.admission_batch:
                    extra = self.waiting.try_get()
                    if extra is None:
                        break
                    batch.append(extra)
                    self._admitting += 1
                if len(batch) > 1:
                    yield from self._admit_batch(batch)
                    continue
            yield from self._admit_one(command)
            self.sim.process(self._execute(command),
                             name=self.name + ".exec")

    def _admit_one(self, command: KVCommand):
        """Generator: wait for tokens and move ``command`` to active."""
        if command.queue_span is not None:
            command.queue_span.finish()
            command.queue_span = None
        # Wait for tokens (the active queue's serving capability).
        token_ctx = None
        if command.trace is not None and self._tokens < command.token_cost:
            token_ctx = command.trace.child(
                "engine.tokens", cat="engine",
                args={"cost": command.token_cost})
        while self._tokens < command.token_cost:
            yield self._token_released()
        if token_ctx is not None:
            token_ctx.finish()
        self._tokens -= command.token_cost
        command.started_at = self.sim.now
        self.stats.total_wait_us += command.started_at - command.enqueued_at
        self.active.add(command)
        self._admitting -= 1

    def _admit_batch(self, batch: List[KVCommand]):
        """Generator: admit a drained batch FCFS; group GET runs.

        Consecutive admitted GETs (>= 2) execute through the store's
        vectored ``multi_get``; everything else (and stores without
        one) runs through the per-command path.
        """
        run: List[KVCommand] = []
        for command in batch:
            yield from self._admit_one(command)
            if command.op == "get" and self._multi_get is not None:
                run.append(command)
                continue
            self._spawn_run(run)
            run = []
            self.sim.process(self._execute(command),
                             name=self.name + ".exec")
        self._spawn_run(run)

    def _spawn_run(self, run: List[KVCommand]) -> None:
        if not run:
            return
        if len(run) == 1:
            self.sim.process(self._execute(run[0]), name=self.name + ".exec")
            return
        self.sim.process(self._execute_batch(list(run)),
                         name=self.name + ".exec")

    def _token_released(self) -> Event:
        event = Event(self.sim)
        self._release_waiters.append(event)
        return event

    #: Writes hitting a full log wait for compaction and retry (the
    #: paper: "PUTs would be served slowly if the new log entry
    #: generation speed cannot catch up") — up to this many times.
    STORE_FULL_RETRIES = 20
    STORE_FULL_BACKOFF_US = 150.0

    def _invoke(self, command: KVCommand, trace):
        """The store-call generator for one command.

        Only stores that declare ``TRACE_AWARE`` receive the trace
        kwarg — baseline stores (FAWN, KVell) keep their plain
        signatures and simply run untraced below the engine spans.
        """
        kwargs = {}
        if trace is not None:
            kwargs["trace"] = trace
        if command.op == "get":
            return self.store.get(command.key, **kwargs)
        if command.op == "put":
            return self.store.put(command.key, command.value, **kwargs)
        if command.op == "del":
            return self.store.delete(command.key, **kwargs)
        raise ValueError("unknown op %r" % command.op)

    def _execute(self, command: KVCommand):
        exec_ctx = None
        trace = None
        if command.trace is not None:
            exec_ctx = command.trace.child("engine.exec." + command.op,
                                           cat="engine")
            if getattr(self.store, "TRACE_AWARE", False):
                trace = exec_ctx
        try:
            if command.op == "put":
                result = yield from self._invoke(command, trace)
                for _attempt in range(self.STORE_FULL_RETRIES):
                    if result.status != "store_full":
                        break
                    yield self.sim.timeout(self.STORE_FULL_BACKOFF_US)
                    result = yield from self._invoke(command, trace)
            else:
                result = yield from self._invoke(command, trace)
        except Exception as exc:  # surface store errors to the waiter
            if exec_ctx is not None:
                exec_ctx.finish({"error": type(exc).__name__})
            self._retire(command)
            if command.completion and not command.completion.triggered:
                command.completion.fail(exc)
            return
        if exec_ctx is not None:
            exec_ctx.finish({"status": result.status,
                             "nvme_accesses": result.nvme_accesses})
        self._retire(command)
        self.stats.completed += 1
        self.stats.total_service_us += self.sim.now - command.started_at
        if command.completion and not command.completion.triggered:
            command.completion.succeed(result)

    def _execute_batch(self, commands: List[KVCommand]):
        """One store round trip for a run of admitted GETs."""
        spans = []
        for command in commands:
            if command.trace is not None:
                spans.append((command, command.trace.child(
                    "engine.exec.get", cat="engine",
                    args={"batched": len(commands)})))
        try:
            results = yield from self._multi_get(
                [command.key for command in commands])
        except Exception as exc:  # surface store errors to the waiters
            for _command, span in spans:
                span.finish({"error": type(exc).__name__})
            for command in commands:
                self._retire(command)
                if command.completion and not command.completion.triggered:
                    command.completion.fail(exc)
            return
        statuses = {command: result.status
                    for command, result in zip(commands, results)}
        for command, span in spans:
            span.finish({"status": statuses[command]})
        for command, result in zip(commands, results):
            self._retire(command)
            self.stats.completed += 1
            self.stats.total_service_us += self.sim.now - command.started_at
            if command.completion and not command.completion.triggered:
                command.completion.succeed(result)

    def _complete(self, command: KVCommand, result: OpResult) -> None:
        """Retire a fused GET at its scheduled completion time."""
        self._retire(command)
        self.stats.completed += 1
        self.stats.total_service_us += self.sim.now - command.started_at
        if command.completion and not command.completion.triggered:
            command.completion.succeed(result)

    def _retire(self, command: KVCommand) -> None:
        self.active.discard(command)
        self._tokens += command.token_cost
        # Wake only the head waiter (FCFS): firing every queued release
        # event per retirement was a thundering herd.
        waiters = self._release_waiters
        while waiters:
            event = waiters.popleft()
            if not event.triggered:
                event.succeed()
                break

    def __repr__(self):
        return "<PartitionIOEngine %s tokens=%d wait=%d active=%d>" % (
            self.name, self._tokens, len(self.waiting), len(self.active))


class OverloadError(Exception):
    """A command was rejected because the waiting queue was full."""
