"""LEED core: data store, compaction, I/O engine, flow control,
swapping, CRRS replication, recovery, and cluster membership."""

from repro.core.circular_log import CircularLog, LogFullError, LogRangeError
from repro.core.client import ClientResult, ClientStats, FrontEndClient
from repro.core.cluster import ClusterConfig, LeedCluster
from repro.core.compaction import CompactionConfig, CompactionStats, Compactor
from repro.core.datastore import (
    NOT_FOUND,
    OK,
    STORE_FULL,
    LeedDataStore,
    OpResult,
    StoreConfig,
    StoreStats,
)
from repro.core.flow_control import FlowController, PendingRequest
from repro.core.hashring import HashRing, VNode, ring_position
from repro.core.io_engine import (
    TOKEN_COST,
    KVCommand,
    OverloadError,
    PartitionIOEngine,
)
from repro.core.jbof import (
    JOINING,
    LEAVING,
    RUNNING,
    JBOFNode,
    LeedOptions,
    VNodeRuntime,
)
from repro.core.membership import ControlPlane, CopyTask, VNodeInfo
from repro.core.protocol import KVReply, KVRequest
from repro.core.recovery import RecoveryReport, recover_store
from repro.core.replication import (
    AbdQuorum,
    ChainReplication,
    CraqChain,
    DirtyReadMode,
    ReplicationPolicy,
    make_policy,
    protocol_names,
    register_protocol,
)
from repro.core.segment import Bucket, KeyItem, Segment, key_hash
from repro.core.segtbl import SegTbl
from repro.core.wal import WalRecord, WalStats, WriteAheadLog

__all__ = [
    "CircularLog", "LogFullError", "LogRangeError",
    "LeedDataStore", "StoreConfig", "StoreStats", "OpResult",
    "OK", "NOT_FOUND", "STORE_FULL",
    "Segment", "Bucket", "KeyItem", "key_hash", "SegTbl",
    "Compactor", "CompactionConfig", "CompactionStats",
    "PartitionIOEngine", "KVCommand", "TOKEN_COST", "OverloadError",
    "FlowController", "PendingRequest",
    "HashRing", "VNode", "ring_position",
    "JBOFNode", "LeedOptions", "VNodeRuntime",
    "JOINING", "RUNNING", "LEAVING",
    "ControlPlane", "VNodeInfo", "CopyTask",
    "KVRequest", "KVReply",
    "FrontEndClient", "ClientResult", "ClientStats",
    "LeedCluster", "ClusterConfig",
    "recover_store", "RecoveryReport",
    "ReplicationPolicy", "ChainReplication", "CraqChain", "AbdQuorum",
    "DirtyReadMode", "make_policy", "protocol_names", "register_protocol",
    "WriteAheadLog", "WalRecord", "WalStats",
]
