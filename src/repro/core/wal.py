"""Per-partition write-ahead log for replication-level recovery.

The store's own crash recovery (:mod:`repro.core.recovery`) rebuilds a
partition's *local* index from flash.  What it cannot recover is the
**replication state**: a write this replica applied whose downstream
acknowledgment never arrived may exist nowhere else when the replica
comes back — re-mirroring from surviving chain members only restores
data the survivors hold.  The WAL closes that gap: every replicated
write appends an intent record before it executes, the record is
retired when the protocol acknowledges it (chain backward ack, ABD
quorum commit), and :meth:`JBOFNode.recover` replays whatever is
still outstanding through the active
:class:`~repro.core.replication.base.ReplicationPolicy`.

The log models the capacitor-backed NVRAM region SmartNIC JBOFs
dedicate to intent journals: appends are synchronous memory writes
(no simulated SSD I/O, no scheduler events), so enabling the WAL
never perturbs the event schedule — schedule digests are byte-
identical with the WAL on or off.  Only byte accounting is modeled.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

#: Fixed per-record header: lsn, op, stamp, lengths.
WAL_RECORD_HEADER_BYTES = 32


@dataclass
class WalRecord:
    """One replicated-write intent."""

    lsn: int
    op: str                      # "put" | "del"
    key: bytes
    value: Optional[bytes]
    #: Protocol ordering stamp: the chain's per-key version (int) or
    #: the ABD logical timestamp tuple.  Replay compares it against
    #: the cluster's current state to skip already-durable writes.
    stamp: object = 0
    #: Ring version when the intent was journaled.  Chain version
    #: counters are only comparable within one ring epoch, so chain
    #: replay refuses records from a reconfigured-away epoch rather
    #: than risk re-proposing a stale value over a newer acked write
    #: (0 = unknown epoch: replay unconditionally, the pre-epoch
    #: behavior ABD still uses — its stamps are globally ordered).
    ring_version: int = 0

    def wire_bytes(self) -> int:
        return (WAL_RECORD_HEADER_BYTES + len(self.key)
                + (len(self.value) if self.value else 0))


@dataclass
class WalStats:
    """Cumulative write-ahead-log counters."""

    appended: int = 0
    acked: int = 0
    dropped: int = 0             # capacity evictions (oldest-first)
    replayed: int = 0
    replay_skipped: int = 0      # already durable at replay time
    bytes_appended: int = 0


class WriteAheadLog:
    """Append-only intent log with ack-based retirement.

    Acknowledged records are dropped immediately — only outstanding
    intents are retained, so memory stays bounded by the protocol's
    in-flight window (plus a hard ``capacity`` backstop for writes
    whose acks are lost to a crash).
    """

    def __init__(self, name: str, capacity: int = 65536):
        self.name = name
        self.capacity = capacity
        self.stats = WalStats()
        self._next_lsn = 1
        #: lsn -> record, in append (= lsn) order.
        self._unacked: "OrderedDict[int, WalRecord]" = OrderedDict()
        #: key -> outstanding lsns in append order (FIFO ack matching).
        self._by_key: Dict[bytes, Deque[int]] = {}

    def __len__(self) -> int:
        return len(self._unacked)

    def append(self, op: str, key: bytes, value: Optional[bytes],
               stamp: object = 0, ring_version: int = 0) -> WalRecord:
        """Journal one write intent; returns the record."""
        record = WalRecord(self._next_lsn, op, key, value, stamp,
                           ring_version)
        self._next_lsn += 1
        self._unacked[record.lsn] = record
        self._by_key.setdefault(key, deque()).append(record.lsn)
        self.stats.appended += 1
        self.stats.bytes_appended += record.wire_bytes()
        while len(self._unacked) > self.capacity:
            _lsn, evicted = self._unacked.popitem(last=False)
            self._forget_key(evicted)
            self.stats.dropped += 1
        return record

    def ack(self, key: bytes) -> Optional[WalRecord]:
        """Retire the oldest outstanding intent for ``key``.

        Chain acks carry only the key; per-key writes are acknowledged
        in the order they were forwarded, so FIFO matching is exact.
        """
        lsns = self._by_key.get(key)
        if not lsns:
            return None
        lsn = lsns.popleft()
        if not lsns:
            del self._by_key[key]
        record = self._unacked.pop(lsn, None)
        if record is not None:
            self.stats.acked += 1
        return record

    def ack_record(self, lsn: int) -> Optional[WalRecord]:
        """Retire one intent by lsn (quorum commits know their record)."""
        record = self._unacked.pop(lsn, None)
        if record is None:
            return None
        self._forget_key(record)
        self.stats.acked += 1
        return record

    def unacknowledged(self) -> List[WalRecord]:
        """Outstanding intents in append order (the replay worklist)."""
        return list(self._unacked.values())

    def mark_replayed(self, lsn: int, skipped: bool = False) -> None:
        """Retire an intent after recovery replay handled it."""
        record = self._unacked.pop(lsn, None)
        if record is None:
            return
        self._forget_key(record)
        if skipped:
            self.stats.replay_skipped += 1
        else:
            self.stats.replayed += 1

    def _forget_key(self, record: WalRecord) -> None:
        lsns = self._by_key.get(record.key)
        if not lsns:
            return
        try:
            lsns.remove(record.lsn)
        except ValueError:
            return
        if not lsns:
            del self._by_key[record.key]

    def __repr__(self):
        return "<WriteAheadLog %s unacked=%d appended=%d>" % (
            self.name, len(self._unacked), self.stats.appended)
