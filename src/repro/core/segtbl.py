"""The in-memory segment table — SegTbl (§3.2.3).

The only per-object index state LEED keeps in DRAM: for each segment,
K bits of chain length and a 4-byte offset into the key log, plus one
lock bit for concurrency control.  Everything else lives on flash,
which is how LEED indexes ~4 TB with 8 GB of SmartNIC DRAM.

The table reserves its modeled footprint from the node's
:class:`~repro.hw.dram.Dram`, so exceeding the platform's memory
budget fails loudly (the effect that caps FAWN/KVell capacity in
Table 3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.hw.dram import Dram
from repro.sim.core import Simulator
from repro.sim.events import Event

#: Modeled DRAM bytes per SegTbl entry: 4 B offset + chain-length bits
#: + lock bit, padded — the paper's "K-bits + 4B offset" (§3.2.3).
SEGTBL_ENTRY_BYTES = 5

#: Sentinel offset for a segment that has never been written.
NO_OFFSET = -1


class SegmentEntry:
    """One segment's DRAM state."""

    __slots__ = ("offset", "chain_len", "locked", "_waiters")

    def __init__(self):
        self.offset: int = NO_OFFSET
        self.chain_len: int = 0
        self.locked: bool = False
        self._waiters: Deque[Event] = deque()

    @property
    def exists(self) -> bool:
        return self.offset != NO_OFFSET


class SegTbl:
    """Array of :class:`SegmentEntry`, with lock-bit concurrency control."""

    def __init__(self, sim: Simulator, num_segments: int,
                 dram: Optional[Dram] = None, name: str = "segtbl"):
        if num_segments < 1:
            raise ValueError("need at least one segment")
        self.sim = sim
        self.name = name
        self.num_segments = num_segments
        self.entries: List[SegmentEntry] = [SegmentEntry()
                                            for _ in range(num_segments)]
        self.dram = dram
        if dram is not None:
            dram.reserve(name, num_segments * SEGTBL_ENTRY_BYTES)
        self.lock_waits = 0

    def footprint_bytes(self) -> int:
        """Modeled DRAM footprint of the table."""
        return self.num_segments * SEGTBL_ENTRY_BYTES

    def entry(self, seg_id: int) -> SegmentEntry:
        """Direct access to one segment's DRAM entry."""
        return self.entries[seg_id]

    # -- index updates -----------------------------------------------------------

    def update(self, seg_id: int, offset: int, chain_len: int) -> None:
        """Point ``seg_id`` at its new key-log location."""
        entry = self.entries[seg_id]
        entry.offset = offset
        entry.chain_len = chain_len

    def location(self, seg_id: int):
        """(offset, chain_len) or None when the segment does not exist."""
        entry = self.entries[seg_id]
        if not entry.exists:
            return None
        return entry.offset, entry.chain_len

    # -- lock bit -----------------------------------------------------------------

    def try_lock(self, seg_id: int) -> bool:
        """Take the lock bit if free; never waits (compaction uses this
        to *skip* locked segments, §3.3.1)."""
        entry = self.entries[seg_id]
        if entry.locked:
            return False
        entry.locked = True
        return True

    def lock(self, seg_id: int) -> Event:
        """Event that fires once the lock bit is held (FCFS waiters)."""
        entry = self.entries[seg_id]
        event = Event(self.sim)
        if not entry.locked:
            entry.locked = True
            event.succeed(seg_id)
        else:
            self.lock_waits += 1
            entry._waiters.append(event)
        return event

    def unlock(self, seg_id: int) -> None:
        """Release the lock bit, handing it to the next FCFS waiter."""
        entry = self.entries[seg_id]
        if not entry.locked:
            raise RuntimeError("unlock of unlocked segment %d" % seg_id)
        while entry._waiters:
            waiter = entry._waiters.popleft()
            if not waiter.triggered:
                # Hand the lock directly to the next waiter.
                waiter.succeed(seg_id)
                return
        entry.locked = False

    def is_locked(self, seg_id: int) -> bool:
        """Whether the segment's lock bit is currently held."""
        return self.entries[seg_id].locked

    # -- iteration ------------------------------------------------------------------

    def existing_segments(self):
        """Yield ids of segments that have an on-log location."""
        for seg_id, entry in enumerate(self.entries):
            if entry.exists:
                yield seg_id

    def __len__(self) -> int:
        return self.num_segments

    def __repr__(self):
        populated = sum(1 for e in self.entries if e.exists)
        return "<SegTbl %s %d/%d populated>" % (self.name, populated,
                                                self.num_segments)
