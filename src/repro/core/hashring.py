"""Consistent hashing over virtual nodes (§3.1.2, §3.7, §3.8).

LEED divides the key space into partitions and maps them to virtual
nodes with consistent hashing.  Each key's *chain* is the sequence of
R successor virtual nodes on the ring (preferring distinct JBOFs):
position 0 is the chain head, position R-1 the tail.

Rings are versioned; every request carries the client's ring version
plus a hop counter, and a node NACKs requests whose chain position
does not match its own view (§3.8.1).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

RING_SPACE = 1 << 32


def ring_position(label: bytes) -> int:
    """Position of a label (vnode id or key) on the ring."""
    digest = hashlib.md5(label).digest()
    return int.from_bytes(digest[:4], "big") % RING_SPACE


@dataclass(frozen=True)
class VNode:
    """One virtual node: a store partition hosted on a JBOF."""

    vnode_id: str
    jbof_address: str

    @property
    def position(self) -> int:
        return ring_position(self.vnode_id.encode("utf-8"))


class HashRing:
    """An immutable snapshot of the ring at one version."""

    def __init__(self, vnodes: List[VNode], replication: int = 3,
                 version: int = 0):
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        self.version = version
        self.replication = replication
        self.vnodes: Dict[str, VNode] = {v.vnode_id: v for v in vnodes}
        entries = sorted((v.position, v.vnode_id) for v in vnodes)
        self._positions = [p for p, _ in entries]
        self._ids = [i for _, i in entries]
        # Pure-compute memoization: ring snapshots are immutable, so a
        # walk from a given start index always yields the same chain.
        # Cached lists are shared — callers must treat them as
        # read-only (all current callers do).
        self._succ_cache: Dict[Tuple[int, int, bool], List[VNode]] = {}
        self._chain_cache: Dict[bytes, List[VNode]] = {}
        self._chain_ids_cache: Dict[bytes, List[str]] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, vnode_id: str) -> bool:
        return vnode_id in self.vnodes

    # -- lookup --------------------------------------------------------------------

    def successors(self, position: int, count: int,
                   distinct_jbofs: bool = True) -> List[VNode]:
        """``count`` vnodes clockwise from ``position``.

        Prefers vnodes on distinct JBOFs (replicas should not share a
        failure domain); falls back to repeats when the cluster has
        fewer JBOFs than replicas.
        """
        if not self._ids:
            return []
        start = bisect_right(self._positions, position) % len(self._ids)
        cache_key = (start, count, distinct_jbofs)
        cached = self._succ_cache.get(cache_key)
        if cached is not None:
            return cached
        chosen: List[VNode] = []
        seen_jbofs = set()
        # First pass: distinct JBOFs.
        for step in range(len(self._ids)):
            vnode = self.vnodes[self._ids[(start + step) % len(self._ids)]]
            if distinct_jbofs and vnode.jbof_address in seen_jbofs:
                continue
            chosen.append(vnode)
            seen_jbofs.add(vnode.jbof_address)
            if len(chosen) == count:
                self._succ_cache[cache_key] = chosen
                return chosen
        # Not enough distinct JBOFs: fill with remaining successors.
        for step in range(len(self._ids)):
            vnode = self.vnodes[self._ids[(start + step) % len(self._ids)]]
            if vnode in chosen:
                continue
            chosen.append(vnode)
            if len(chosen) == count:
                break
        self._succ_cache[cache_key] = chosen
        return chosen

    #: Bound on the per-snapshot key -> chain memo (keys recur heavily
    #: under zipfian workloads; the cap just stops pathological growth).
    CHAIN_CACHE_MAX = 65536

    def chain_for_key(self, key: bytes) -> List[VNode]:
        """The replication chain (head..tail) responsible for ``key``."""
        chain = self._chain_cache.get(key)
        if chain is None:
            chain = self.successors(ring_position(key), self.replication)
            if len(self._chain_cache) < self.CHAIN_CACHE_MAX:
                self._chain_cache[key] = chain
        return chain

    def chain_ids_for_key(self, key: bytes) -> List[str]:
        """Chain member vnode ids (head..tail) for ``key``."""
        ids = self._chain_ids_cache.get(key)
        if ids is None:
            ids = [v.vnode_id for v in self.chain_for_key(key)]
            if len(self._chain_ids_cache) < self.CHAIN_CACHE_MAX:
                self._chain_ids_cache[key] = ids
        return ids

    def owner_ranges(self, vnode_id: str) -> List[Tuple[int, int]]:
        """Ring arcs for which ``vnode_id`` appears in the chain.

        Returned as half-open arcs ``(lo, hi]`` in ring space (wrapping
        arcs are split in two).  Used by COPY to decide which keys to
        migrate (§3.8.1).
        """
        if vnode_id not in self.vnodes or not self._ids:
            return []
        n = len(self._ids)
        if n == 1:
            return [(0, RING_SPACE)]
        arcs: List[Tuple[int, int]] = []
        for index in range(n):
            arc_hi = self._positions[index]
            arc_lo = self._positions[index - 1]
            chain = self.successors(arc_lo, self.replication)
            if any(v.vnode_id == vnode_id for v in chain):
                if arc_lo < arc_hi:
                    arcs.append((arc_lo, arc_hi))
                else:  # wrap
                    arcs.append((arc_lo, RING_SPACE))
                    if arc_hi:
                        arcs.append((0, arc_hi))
        return _merge_arcs(arcs)

    def position_in_chain(self, key: bytes, vnode_id: str) -> Optional[int]:
        """This vnode's hop position in the key's chain, or None."""
        for index, vnode in enumerate(self.chain_for_key(key)):
            if vnode.vnode_id == vnode_id:
                return index
        return None

    def with_vnode(self, vnode: VNode, version: Optional[int] = None) -> "HashRing":
        """A new ring snapshot including ``vnode``."""
        vnodes = list(self.vnodes.values()) + [vnode]
        return HashRing(vnodes, self.replication,
                        self.version + 1 if version is None else version)

    def without_vnode(self, vnode_id: str,
                      version: Optional[int] = None) -> "HashRing":
        """A new ring snapshot excluding ``vnode_id``."""
        vnodes = [v for v in self.vnodes.values() if v.vnode_id != vnode_id]
        return HashRing(vnodes, self.replication,
                        self.version + 1 if version is None else version)

    def __repr__(self):
        return "<HashRing v%d %d vnodes R=%d>" % (
            self.version, len(self._ids), self.replication)


def _merge_arcs(arcs: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent (lo, hi] arcs."""
    if not arcs:
        return []
    arcs = sorted(arcs)
    merged = [arcs[0]]
    for lo, hi in arcs[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def in_arcs(position: int, arcs: List[Tuple[int, int]]) -> bool:
    """Whether a ring position falls inside any (lo, hi] arc."""
    for lo, hi in arcs:
        if lo < position <= hi:
            return True
    return False
