"""Analytic platform comparisons (Table 1) and capacity math (Table 3).

These functions compute, from the platform spec sheets and the real
serialized data-structure sizes, the quantities the paper derives on
paper: storage-hierarchy skew, per-core computing density, the
balls-into-bins maximum-load bound, and the DRAM-limited usable
capacity of each indexing scheme at full 4x960 GB scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.segment import BUCKET_HEADER, KEY_ITEM_HEADER, VALUE_ENTRY_HEADER
from repro.core.segtbl import SEGTBL_ENTRY_BYTES
from repro.hw.platforms import (
    RASPBERRY_PI,
    SERVER_JBOF,
    STINGRAY,
    PlatformSpec,
)

#: DRAM the OS, network stack, and buffers take before indexes (bytes).
SYSTEM_DRAM_RESERVE = 1 << 30

#: FAWN DRAM bytes per indexed object: 15-bit fragment + valid bit +
#: 4 B pointer (FAWN §3.1 via LEED §2.3).  Defined here with the
#: capacity math; the FAWN baseline datastore imports it.
FAWN_INDEX_BYTES_PER_OBJECT = 6

#: KVell modeled DRAM per indexed object: B-tree entry (key prefix +
#: pointers + node amortization) ~48 B, plus ~8 B of free-list and
#: page-table metadata — calibrated to KVell-JBOF's 33 GB usable
#: space for 256 B objects on an 8 GB-DRAM Stingray (Table 3).
KVELL_DRAM_BYTES_PER_OBJECT = 56


@dataclass
class PlatformRow:
    """One column of Table 1."""

    platform: str
    storage_skew_ratio: float
    network_density_gbps_per_core: float
    storage_density_iops_per_core: float
    max_load_expression: str


def balls_into_bins_max_load(m: float, n: int) -> float:
    """Expected maximum load: m/n + Θ(sqrt(m·ln n / n)) for m >> n ln n.

    (Raab & Steger '98 — the bound the paper's Table 1 row 4 quotes.)
    """
    if n <= 1:
        return m
    return m / n + math.sqrt(2.0 * m * math.log(n) / n)


def max_load_expression(n: int) -> str:
    """The symbolic Table 1 row for an n-node cluster."""
    return "%.4fm + O(sqrt(%.4fm))" % (1.0 / n, 2.0 * math.log(max(n, 2)) / n)


def table1_rows(embedded_nodes: int = 100, jbof_nodes: int = 3
                ) -> List[PlatformRow]:
    """Compute Table 1 from our platform models."""
    rows = []
    for spec, n in ((RASPBERRY_PI, embedded_nodes),
                    (SERVER_JBOF, jbof_nodes),
                    (STINGRAY, jbof_nodes)):
        rows.append(PlatformRow(
            platform=spec.name,
            storage_skew_ratio=spec.storage_skew_ratio(),
            network_density_gbps_per_core=spec.network_density_gbps_per_core(),
            storage_density_iops_per_core=spec.storage_density_iops_per_core(),
            max_load_expression=max_load_expression(n)))
    return rows


# -- Table 3 capacity rows -----------------------------------------------------------

def index_dram_budget(spec: PlatformSpec) -> int:
    """DRAM available for indexing after the system reserve."""
    return max(spec.dram_bytes - SYSTEM_DRAM_RESERVE, 0)


def fawn_usable_fraction(spec: PlatformSpec, object_bytes: int,
                         num_ssds: int = 4) -> float:
    """Flash fraction FAWN can index with 6 B/object in DRAM."""
    flash = spec.flash_bytes(num_ssds)
    max_objects = index_dram_budget(spec) // FAWN_INDEX_BYTES_PER_OBJECT
    return min(max_objects * object_bytes / flash, 1.0)


def kvell_usable_fraction(spec: PlatformSpec, object_bytes: int,
                          num_ssds: int = 4) -> float:
    """Flash fraction KVell can index with its B-tree + caches."""
    flash = spec.flash_bytes(num_ssds)
    max_objects = index_dram_budget(spec) // KVELL_DRAM_BYTES_PER_OBJECT
    return min(max_objects * object_bytes / flash, 1.0)


def leed_usable_fraction(spec: PlatformSpec, object_bytes: int,
                         num_ssds: int = 4, key_bytes: int = 16,
                         block_size: int = 4096,
                         keys_per_segment: int = 64) -> float:
    """Flash fraction LEED's hybrid index exposes for values.

    LEED's DRAM cost is per *segment* (~5 B), so DRAM never limits it;
    what it pays instead is flash overhead: the key log (bucket
    headers + key items, with bucket padding) and the per-value entry
    header.  The usable fraction is value bytes over raw flash.
    """
    flash = spec.flash_bytes(num_ssds)
    key_item = KEY_ITEM_HEADER.size + key_bytes
    # Bucket packing efficiency: items per block after the header.
    items_per_bucket = (block_size - BUCKET_HEADER.size) // key_item
    key_log_per_object = block_size / items_per_bucket
    value_log_per_object = VALUE_ENTRY_HEADER.size + key_bytes + object_bytes
    per_object = key_log_per_object + value_log_per_object
    max_objects_flash = flash / per_object
    # DRAM check (never binding in practice): one SegTbl entry per
    # segment of ``keys_per_segment`` objects.
    max_objects_dram = (index_dram_budget(spec) // SEGTBL_ENTRY_BYTES
                        ) * keys_per_segment
    max_objects = min(max_objects_flash, max_objects_dram)
    return min(max_objects * object_bytes / flash, 1.0)


def capacity_table(spec: PlatformSpec = STINGRAY,
                   num_ssds: int = 4) -> Dict[str, Dict[int, float]]:
    """The Table 3 "Max. Capacity" rows for 256 B and 1 KB objects."""
    table: Dict[str, Dict[int, float]] = {}
    for system, fn in (("FAWN-JBOF", fawn_usable_fraction),
                       ("KVell-JBOF", kvell_usable_fraction),
                       ("LEED", leed_usable_fraction)):
        table[system] = {size: fn(spec, size, num_ssds)
                         for size in (256, 1024)}
    return table


def leed_dram_per_object(keys_per_segment: int = 64) -> float:
    """LEED's in-DRAM bytes per object — the <0.5 B/object headline."""
    return SEGTBL_ENTRY_BYTES / keys_per_segment
