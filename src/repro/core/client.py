"""The client front-end library (§3.1.2, §3.5, §3.7).

Co-located with each application client, the front-end:

* keeps a local ring snapshot (pushed by the control plane) and routes
  each command to the right chain position — writes to the head, reads
  to the *replica with the most available tokens* (CRRS, §3.7), or to
  the tail when CRRS is disabled;
* runs the flow-control scheduler of Algorithm 1, spending the token
  allocations that back-end partitions piggyback on responses;
* reacts to NACK / UNAVAILABLE / timeout by refreshing its ring view
  from the control plane and retrying.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.flow_control import FlowController, PendingRequest
from repro.core.hashring import HashRing, VNode
from repro.core.io_engine import TOKEN_COST
from repro.core.jbof import LEAVING, RUNNING
from repro.core.protocol import (
    STATUS_NACK,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_UNAVAILABLE,
    KVReply,
    KVRequest,
    MembershipUpdate,
    ReadPolicy,
)
from repro.net.rpc import RpcEndpoint, RpcError, RpcTimeout
from repro.net.topology import Network, NicProfile
from repro.obs.hist import LatencyHistogram
from repro.sim.core import Simulator
from repro.sim.events import Event

#: Cap on the deprecated raw latency list kept by :class:`ClientStats`.
#: The histogram is the unbounded-safe record; the raw list survives
#: (truncated) for one release so external consumers can migrate.
LATENCY_LIST_CAP = 65536


@dataclass
class ClientResult:
    """Outcome of one client-level operation."""

    status: str
    value: Optional[bytes] = None
    latency_us: float = 0.0
    retries: int = 0
    served_by: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class ClientStats:
    """Cumulative front-end statistics.

    Latencies are recorded into a fixed-size log-scale
    :class:`~repro.obs.hist.LatencyHistogram`; ``latencies_us`` is the
    **deprecated** raw list — it is capped at :data:`LATENCY_LIST_CAP`
    samples (it used to grow without bound) and will be removed; read
    ``histogram`` instead.
    """

    operations: int = 0
    ok: int = 0
    not_found: int = 0
    failures: int = 0
    retries: int = 0
    nacks: int = 0
    timeouts: int = 0
    overloads: int = 0
    #: Deprecated: capped raw sample list (see class docstring).
    latencies_us: List[float] = field(default_factory=list)
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    _cap_warned: bool = field(default=False, repr=False)

    def record(self, result: ClientResult) -> None:
        """Fold one finished operation into the counters."""
        self.operations += 1
        self.retries += result.retries
        if result.status == STATUS_OK:
            self.ok += 1
        elif result.status == STATUS_NOT_FOUND:
            self.not_found += 1
        else:
            self.failures += 1
        self.histogram.record(result.latency_us)
        if len(self.latencies_us) < LATENCY_LIST_CAP:
            self.latencies_us.append(result.latency_us)
        elif not self._cap_warned:
            self._cap_warned = True
            warnings.warn(
                "ClientStats.latencies_us is deprecated and capped at "
                "%d samples; read ClientStats.histogram instead"
                % LATENCY_LIST_CAP, DeprecationWarning, stacklevel=2)

    def mean_latency_us(self) -> float:
        """Average end-to-end latency over recorded operations."""
        return self.histogram.mean_us()

    def percentile_latency_us(self, quantile: float) -> float:
        """Latency at ``quantile`` (e.g. 0.999 for the p99.9 tail).

        Served from the histogram: the value is the bucket midpoint,
        within one log-scale bucket width (~19%) of the exact sample
        quantile.
        """
        return self.histogram.percentile(quantile)


class FrontEndClient:
    """One application client with its co-located front-end library."""

    def __init__(self, sim: Simulator, network: Network, address: str,
                 control_plane_address: str = "controlplane",
                 flow_control: bool = True, crrs: bool = True,
                 read_policy: Optional[ReadPolicy] = None,
                 request_timeout_us: float = 100_000.0,
                 max_retries: int = 6, tenant: Optional[str] = None,
                 nic_profile: Optional[NicProfile] = None,
                 tracer: Optional[object] = None,
                 trace_sample_interval: int = 0):
        self.sim = sim
        self.address = address
        self.control_plane_address = control_plane_address
        self.crrs = crrs
        #: Replica choice for GETs (:class:`ReadPolicy`): CRRS = most
        #: tokens (LEED §3.7), TAIL = classic chain replication (FAWN),
        #: ANY = round robin over replicas (a sharded KVell deployment).
        #: Bare strings are coerced for one release (deprecated).
        self.read_policy = (ReadPolicy.coerce(read_policy)
                            or (ReadPolicy.CRRS if crrs else ReadPolicy.TAIL))
        self._read_rr = 0
        self.request_timeout_us = request_timeout_us
        self.max_retries = max_retries
        self.tenant = tenant or address
        #: Tracing: a :class:`repro.obs.Tracer` plus the sampling
        #: interval — every Nth operation gets a trace; 0 disables.
        self.tracer = tracer
        self.trace_sample_interval = trace_sample_interval
        self._trace_seq = 0
        network.attach(address, nic_profile, sim=sim)
        self.rpc = RpcEndpoint(sim, network, address)
        self.flow = FlowController(sim, enabled=flow_control,
                                   name=address + ".flow")
        #: Fast path (``fast_datapath``): issue KV calls through a
        #: completion callback instead of a per-call process, and defer
        #: SENDs into the RPC coalescing buffer.
        self.turbo = False
        self.local_ring: HashRing = HashRing([], replication=3, version=0)
        self.vnode_states: Dict[str, str] = {}
        self.stats = ClientStats()
        self.rpc.register("membership", self._handle_membership)

    # -- membership --------------------------------------------------------------------

    def _handle_membership(self, src: str, update: MembershipUpdate):
        self.apply_membership(update)
        yield self.sim.timeout(0)
        return None

    def apply_membership(self, update: MembershipUpdate) -> None:
        """Install a ring snapshot (stale versions are ignored)."""
        if update.ring_version < self.local_ring.version:
            return
        vnodes = [VNode(vid, addr) for vid, addr in update.vnodes]
        self.local_ring = HashRing(vnodes, update.replication,
                                   update.ring_version)
        self.vnode_states = dict(update.states)

    def refresh_ring(self):
        """Generator: pull a fresh snapshot from the control plane."""
        try:
            update = yield self.rpc.call(self.control_plane_address,
                                         "get_ring", None, 16,
                                         timeout_us=self.request_timeout_us)
        except (RpcTimeout, RpcError):
            return False
        self.apply_membership(update)
        return True

    # -- target selection -----------------------------------------------------------------

    def _pick_target(self, op: str, key: bytes):
        """(hop, VNode) for this command under the current view."""
        chain = self.local_ring.chain_for_key(key)
        if not chain:
            return None
        if op in ("put", "del"):
            return 0, chain[0]
        # GET: prefer serving replicas; never a LEAVING/JOINING one.
        candidates = [
            (hop, vnode) for hop, vnode in enumerate(chain)
            if self.vnode_states.get(vnode.vnode_id, RUNNING) == RUNNING]
        if not candidates:
            return len(chain) - 1, chain[-1]
        policy = ReadPolicy.CRRS if self.crrs else ReadPolicy.coerce(
            self.read_policy)
        if policy == ReadPolicy.CRRS:
            return max(candidates,
                       key=lambda hv: self.flow.view(hv[1].vnode_id).tokens)
        if policy == ReadPolicy.ANY:
            self._read_rr += 1
            return candidates[self._read_rr % len(candidates)]
        # Plain chain replication: reads at the tail only.
        return candidates[-1]

    # -- operations ----------------------------------------------------------------------------

    def get(self, key: bytes):
        """Generator: GET ``key``; returns a :class:`ClientResult`."""
        return (yield from self._operate("get", key, None))

    def put(self, key: bytes, value: bytes):
        """Generator: PUT ``key`` = ``value``."""
        return (yield from self._operate("put", key, value))

    def delete(self, key: bytes):
        """Generator: DEL ``key``."""
        return (yield from self._operate("del", key, None))

    def _begin_trace(self, op: str):
        """Root trace context for this operation, or None (sampling)."""
        if self.tracer is None or self.trace_sample_interval <= 0:
            return None
        sequence = self._trace_seq
        self._trace_seq += 1
        if sequence % self.trace_sample_interval:
            return None
        return self.tracer.trace("client." + op, track=self.address,
                                 cat="client")

    def _operate(self, op: str, key: bytes, value: Optional[bytes]):
        ctx = self._begin_trace(op)
        result = yield from self._operate_body(op, key, value, ctx)
        if ctx is not None:
            ctx.finish({"status": result.status, "retries": result.retries})
        return result

    def _operate_body(self, op: str, key: bytes, value: Optional[bytes],
                      ctx):
        start = self.sim.now
        retries = 0
        while True:
            target = self._pick_target(op, key)
            if target is None:
                ok = yield from self.refresh_ring()
                if not ok:
                    yield self.sim.timeout(1000.0)
                target = self._pick_target(op, key)
                if target is None:
                    return ClientResult("no_ring",
                                        latency_us=self.sim.now - start,
                                        retries=retries)
            hop, vnode = target
            body = KVRequest(op, key, value, vnode.vnode_id,
                             self.local_ring.version, hop, self.tenant,
                             trace=ctx)
            reply = yield from self._issue(body, vnode, ctx)
            if reply is None:
                self.stats.timeouts += 1
            elif reply.status in (STATUS_OK, STATUS_NOT_FOUND,
                                  "store_full"):
                result = ClientResult(reply.status, reply.value,
                                      self.sim.now - start, retries,
                                      reply.served_by)
                self.stats.record(result)
                return result
            elif reply.status == STATUS_NACK:
                self.stats.nacks += 1
            elif reply.status == STATUS_OVERLOADED:
                # Shed by the back-end: back off and retry without a
                # ring refresh (the view is fine, the node is busy).
                self.stats.overloads += 1
                retries += 1
                if retries > self.max_retries:
                    result = ClientResult(STATUS_OVERLOADED,
                                          latency_us=self.sim.now - start,
                                          retries=retries)
                    self.stats.record(result)
                    return result
                yield self.sim.timeout(150.0 * retries)
                continue
            elif reply.status == STATUS_UNAVAILABLE:
                pass
            retries += 1
            if retries > self.max_retries:
                result = ClientResult("unavailable",
                                      latency_us=self.sim.now - start,
                                      retries=retries)
                self.stats.record(result)
                return result
            # Stale view or dead node: resync and back off briefly.
            yield from self.refresh_ring()
            yield self.sim.timeout(200.0 * retries)

    def _issue(self, body: KVRequest, vnode: VNode, ctx=None):
        """Generator: run one request through flow control + RPC."""
        target = vnode.vnode_id
        waiter: Event = self.sim.event()
        flow_ctx = None
        if ctx is not None:
            flow_ctx = ctx.child("client.flow", cat="client",
                                 args={"target": target})

        def send():
            if flow_ctx is not None:
                flow_ctx.finish()
            if self.turbo:
                self._call_direct(body, vnode, target, waiter)
            else:
                self.sim.process(self._call(body, vnode, target, waiter),
                                 name=self.address + ".call")

        self.flow.enqueue(self.tenant, PendingRequest(
            target=target, token_cost=TOKEN_COST[body.op], send=send))
        self.rpc.flush()
        reply = yield waiter
        return reply

    def _call_direct(self, body: KVRequest, vnode: VNode, target: str,
                     waiter: Event) -> None:
        """Issue one KV call through a completion callback (fast path).

        Equivalent to spawning :meth:`_call`, minus the per-call
        process: the RPC waiter's callback folds the piggybacked
        tokens into the flow controller and resolves ``waiter``.  The
        SEND is deferred into the coalescing buffer; callers flush.
        """
        # Stamp the attempt's give-up deadline at send time — exactly
        # when the RPC timeout clock starts — so replicas can refuse a
        # copy that surfaces from a congested queue after this client
        # stopped listening (zombie duplicate of a retried write).
        body.deadline_us = self.sim.now + self.request_timeout_us
        event = self.rpc.call(vnode.jbof_address, "kv", body,
                              body.wire_bytes(),
                              timeout_us=self.request_timeout_us, defer=True)

        def finish(evt: Event) -> None:
            if not evt._ok:
                evt.defuse()
                self.flow.on_complete(target)
                self.rpc.flush()
                if not waiter.triggered:
                    waiter.succeed(None)
                return
            reply: KVReply = evt._value
            credited = reply.served_by or target
            self.flow.on_response(credited, reply.tokens)
            self.flow.on_complete(target)
            self.rpc.flush()
            if not waiter.triggered:
                waiter.succeed(reply)

        event.callbacks.append(finish)

    def _call(self, body: KVRequest, vnode: VNode, target: str,
              waiter: Event):
        body.deadline_us = self.sim.now + self.request_timeout_us
        try:
            reply: KVReply = yield self.rpc.call(
                vnode.jbof_address, "kv", body, body.wire_bytes(),
                timeout_us=self.request_timeout_us)
        except (RpcTimeout, RpcError):
            self.flow.on_complete(target)
            if not waiter.triggered:
                waiter.succeed(None)
            return
        # The reply may come from a different vnode (request shipping);
        # credit the partition that actually served us.
        credited = reply.served_by or target
        self.flow.on_response(credited, reply.tokens)
        self.flow.on_complete(target)
        if not waiter.triggered:
            waiter.succeed(reply)

    def __repr__(self):
        return "<FrontEndClient %s ops=%d>" % (self.address,
                                               self.stats.operations)
