"""ABD majority-quorum replication (multi-writer atomic registers).

The classic Attiya–Bar-Noy–Dolev protocol, adapted to the per-key
chains of the hash ring: a key's replica group is the same R vnodes
chain replication would use, but there is no head/tail — any replica
addressed by a client coordinates.

Write (two quorum phases):

1. *query* — read the key's logical timestamp from a majority;
2. *commit* — apply the value at stamp ``(max_n + 1, coordinator)``
   locally and at enough peers to reach a majority.

Read (one quorum phase + repair):

1. read ``(stamp, value)`` locally and from a majority;
2. answer with the highest-stamped value;
3. write that value back to any responder that was stale (the
   read-repair that makes ABD reads linearizable).

Stamps are ``(n, writer)`` tuples ordered lexicographically, kept in
a per-vnode map on the policy — the SmartNIC DRAM metadata a real
deployment would hold beside the store.  The coordinator journals
each write in the partition WAL after the query phase and retires it
on quorum commit, so a coordinator crash between phases leaves an
intent that :meth:`replay` re-commits at its original stamp.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.protocol import (
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_UNAVAILABLE,
    AbdCommit,
    AbdQuery,
    AbdVote,
    KVReply,
    KVRequest,
)
from repro.core.datastore import OpResult
from repro.core.replication.base import ReplicationPolicy, register_protocol
from repro.hw.cpu import CYCLE_COSTS

#: The zero stamp: sorts below every real write's stamp.
ZERO_STAMP = (0, "")

#: Vnode state string (mirrors ``repro.core.jbof.JOINING``, which this
#: module cannot import without a cycle): a joining replica's store is
#: still being populated by COPY, so it votes UNAVAILABLE.
JOINING = "JOINING"


@register_protocol
class AbdQuorum(ReplicationPolicy):
    """Majority read/write quorums with per-key logical timestamps."""

    name = "abd"

    #: RPC deadline for quorum phases.  Shorter than the client's
    #: request timeout so a dead replica costs one phase, not the op.
    quorum_timeout_us = 50_000.0

    def __init__(self, node):
        super().__init__(node)
        #: vnode_id -> key -> (n, writer) stamp of the applied value.
        self._stamps: Dict[str, Dict[bytes, Tuple[int, str]]] = {}
        #: Monotonic per-coordinator op sequence, folded into the
        #: stamp's writer component: two writes to the same key that
        #: interleave their query phases at one coordinator would
        #: otherwise mint identical ``(max_n + 1, address)`` stamps,
        #: and replicas would silently drop the equal-stamp loser
        #: while both clients saw OK.
        self._op_seq = 0

    def register_handlers(self) -> None:
        rpc = self.node.rpc
        rpc.register("abd_query", self._handle_abd_query)
        rpc.register("abd_commit", self._handle_abd_commit)

    # -- stamp bookkeeping ---------------------------------------------------

    def _next_writer(self) -> str:
        """Unique writer component for a fresh stamp.

        The zero-padded sequence keeps the writer string's lexical
        order equal to coordination order at this node, so same-``n``
        ties between ops of one coordinator resolve to the later op
        — and no two ops anywhere share a stamp.
        """
        self._op_seq += 1
        return "%s#%012d" % (self.node.address, self._op_seq)

    def stamp_of(self, vnode_id: str, key: bytes) -> Tuple[int, str]:
        return self._stamps.get(vnode_id, {}).get(key, ZERO_STAMP)

    def _set_stamp(self, vnode_id: str, key: bytes,
                   stamp: Tuple[int, str]) -> None:
        self._stamps.setdefault(vnode_id, {})[key] = stamp

    def committed_stamp(self, runtime, key: bytes):
        return self.stamp_of(runtime.vnode_id, key)

    def migration_stamp(self, runtime, key: bytes):
        # ABD's (round, writer) timestamps are the protocol's total
        # order; COPY/mirror pairs carry them so a buffered scan
        # snapshot cannot be applied over a newer quorum commit.
        return self.stamp_of(runtime.vnode_id, key)

    def on_migrated(self, runtime, key: bytes, stamp) -> None:
        # A migrated value must carry its timestamp into this replica's
        # vote, or a stale pre-migration replica outvotes the fresh
        # copy at the next read quorum and read-repair rolls the key
        # back (a lost acked write the failure-burst matrix caught).
        if isinstance(stamp, tuple) \
                and stamp > self.stamp_of(runtime.vnode_id, key):
            self._set_stamp(runtime.vnode_id, key, stamp)

    def _peers(self, chain: List[str],
               own_vnode: str) -> List[Tuple[str, str]]:
        """(vnode_id, jbof_address) for every other replica of the key."""
        ring = self.node.local_ring
        peers = []
        for vnode_id in chain:
            if vnode_id == own_vnode:
                continue
            vnode = ring.vnodes.get(vnode_id)
            if vnode is not None:
                peers.append((vnode_id, vnode.jbof_address))
        return peers

    # -- quorum gather -------------------------------------------------------

    def _gather(self, calls, need: int, usable=None):
        """Generator: wait until ``need`` of ``calls`` succeed (or all
        settle), returning the successful response bodies.

        Counting-waiter idiom: one completion callback per call feeds
        a shared waiter event; failures (timeouts, partitions) are
        defused so a dead replica costs nothing beyond its absence.
        Late responses after the waiter fires still land in
        ``results`` harmlessly — the caller has already moved on.

        ``usable`` filters which responses count toward ``need``: a
        JOINING replica answers fast with an UNAVAILABLE vote, and if
        those counted, the waiter could fire before slower healthy
        replicas report — rejecting an op a real quorum would accept.
        Unusable responses are still appended to ``results`` so
        callers can keep their own filtering.
        """
        results: list = []
        if not calls:
            return results
        waiter = self.node.sim.event()
        state = {"outstanding": len(calls), "good": 0}

        def settle(event) -> None:
            state["outstanding"] -= 1
            if event._ok:
                results.append(event._value)
                if usable is None or usable(event._value):
                    state["good"] += 1
            else:
                event.defuse()
            if not waiter.triggered and (state["good"] >= need
                                         or state["outstanding"] == 0):
                waiter.succeed(None)

        for event in calls:
            if event.callbacks is None:
                # Already processed (the caller yielded between issuing
                # the calls and gathering): settle it inline.
                settle(event)
            else:
                event.callbacks.append(settle)
        if need <= 0:
            return results
        if not waiter.triggered:
            yield waiter
        return results

    # -- write path ----------------------------------------------------------

    def on_client_write(self, runtime, request, body, chain):
        node = self.node
        # A retried write's earlier attempt surfacing after its
        # per-attempt deadline would take a *fresh* stamp (max+1) and
        # roll the key back over newer acked values; refuse it before
        # the query phase (same zombie guard as the chain entry).
        if (body.op != "get" and body.deadline_us is not None
                and node.sim.now > body.deadline_us):
            runtime.stats.writes_expired += 1
            return
        majority = len(chain) // 2 + 1
        peers = self._peers(chain, runtime.vnode_id)
        if len(peers) + 1 < majority:
            node._respond(request, KVReply(
                STATUS_UNAVAILABLE, ring_version=node.local_ring.version))
            return
        # Phase 1: learn the highest stamp from a majority.
        runtime.stats.quorum_queries += 1
        calls = []
        for vnode_id, address in peers:
            query = AbdQuery(vnode_id, body.key)
            runtime.stats.quorum_bytes += query.wire_bytes()
            calls.append(node.rpc.call(
                address, "abd_query", query, query.wire_bytes(),
                timeout_us=self.quorum_timeout_us))
        votes = yield from self._gather(
            calls, majority - 1,
            usable=lambda v: v.status != STATUS_UNAVAILABLE)
        votes = [v for v in votes if v.status != STATUS_UNAVAILABLE]
        if len(votes) < majority - 1:
            node._respond(request, KVReply(
                STATUS_UNAVAILABLE, ring_version=node.local_ring.version))
            return
        max_n = self.stamp_of(runtime.vnode_id, body.key)[0]
        for vote in votes:
            max_n = max(max_n, vote.stamp[0])
        stamp = (max_n + 1, self._next_writer())
        # Journal the intent before touching any replica: a crash
        # between the phases leaves the record for recovery replay.
        wal = self._wal(runtime)
        record = None
        if wal is not None:
            record = wal.append(body.op, body.key, body.value, stamp)
        # Apply locally (the coordinator counts toward the quorum).
        result = yield from node._execute(runtime, body)
        if not result.ok and result.status != STATUS_NOT_FOUND:
            if record is not None:
                wal.ack_record(record.lsn)
            node._respond(request, node._reply_for(runtime, body, result))
            return
        self._set_stamp(runtime.vnode_id, body.key, stamp)
        # Phase 2: commit at enough peers to reach a majority.
        committed = yield from self._commit_quorum(
            runtime, body.op, body.key, body.value, stamp, peers,
            majority - 1)
        if not committed:
            # The write may be partially applied; the WAL record stays
            # journaled so recovery can finish the job.
            node._respond(request, KVReply(
                STATUS_UNAVAILABLE, ring_version=node.local_ring.version))
            return
        if record is not None:
            wal.ack_record(record.lsn)
        runtime.stats.writes_committed += 1
        node._respond(request, node._reply_for(runtime, body, result))
        if result.ok and body.op == "put":
            node._mirror_write(runtime.vnode_id, body.key, body.value,
                               stamp)

    def on_forward(self, runtime, request, body, chain):
        # No chain hops in ABD: a forwarded envelope (stale client
        # view) is just coordinated here.
        yield from self.on_client_write(runtime, request, body, chain)

    def _commit_quorum(self, runtime, op, key, value, stamp, peers, need):
        """Generator: fan a commit out to ``peers``; True on quorum."""
        node = self.node
        calls = []
        for vnode_id, address in peers:
            commit = AbdCommit(vnode_id, op, key, value, stamp)
            runtime.stats.quorum_bytes += commit.wire_bytes()
            calls.append(node.rpc.call(
                address, "abd_commit", commit, commit.wire_bytes(),
                timeout_us=self.quorum_timeout_us))
        acks = yield from self._gather(calls, need,
                                       usable=lambda a: a == STATUS_OK)
        acks = [a for a in acks if a == STATUS_OK]
        return len(acks) >= need

    # -- read path -----------------------------------------------------------

    def serve_read(self, runtime, request, body, chain):
        node = self.node
        majority = len(chain) // 2 + 1
        peers = self._peers(chain, runtime.vnode_id)
        if len(peers) + 1 < majority:
            node._respond(request, KVReply(
                STATUS_UNAVAILABLE, ring_version=node.local_ring.version))
            return
        runtime.stats.quorum_queries += 1
        calls = []
        for vnode_id, address in peers:
            query = AbdQuery(vnode_id, body.key, want_value=True)
            runtime.stats.quorum_bytes += query.wire_bytes()
            calls.append(node.rpc.call(
                address, "abd_query", query, query.wire_bytes(),
                timeout_us=self.quorum_timeout_us))
        # Local read overlaps the quorum round trip.
        result = yield from node._execute(runtime, body)
        votes = yield from self._gather(
            calls, majority - 1,
            usable=lambda v: v.status != STATUS_UNAVAILABLE)
        votes = [v for v in votes if v.status != STATUS_UNAVAILABLE]
        if len(votes) < majority - 1:
            node._respond(request, KVReply(
                STATUS_UNAVAILABLE, ring_version=node.local_ring.version))
            return
        local_stamp = self.stamp_of(runtime.vnode_id, body.key)
        if result.status == "overloaded":
            # Shed local read: serve purely from the quorum's answers.
            local_stamp = ZERO_STAMP
        best_stamp, best_value = local_stamp, result.value
        for vote in votes:
            if vote.stamp > best_stamp:
                best_stamp, best_value = vote.stamp, vote.value
        # Read repair: bring stale responders (and ourselves) up to
        # the winning stamp before answering, so the read is atomic.
        # A winning vote with no value is a delete — repaired as a
        # "del" so stale replicas cannot resurrect the dead value at
        # a later quorum that misses the deleter's replica.
        if best_stamp > ZERO_STAMP:
            repair_op = "put" if best_value is not None else "del"
            repaired = False
            if best_stamp > local_stamp:
                repair = KVRequest(repair_op, body.key, best_value,
                                   runtime.vnode_id, tenant="__abd__")
                yield from node._execute(runtime, repair)
                self._set_stamp(runtime.vnode_id, body.key, best_stamp)
                repaired = True
            for vote in votes:
                if vote.stamp >= best_stamp:
                    continue
                vnode = node.local_ring.vnodes.get(vote.vnode_id)
                if vnode is None:
                    continue
                commit = AbdCommit(vote.vnode_id, repair_op, body.key,
                                   best_value, best_stamp)
                runtime.stats.quorum_bytes += commit.wire_bytes()
                node.rpc.notify(vnode.jbof_address, "abd_commit", commit,
                                commit.wire_bytes())
                repaired = True
            if repaired:
                runtime.stats.read_repairs += 1
        runtime.stats.reads_served += 1
        if best_value is not None:
            outcome = OpResult("ok", value=best_value)
        else:
            outcome = OpResult("not_found")
        node._respond(request, node._reply_for(runtime, body, outcome))

    def fast_read_local(self, runtime, body, chain) -> bool:
        # Every ABD read needs a quorum round: never serve locally.
        return False

    # -- replica-side handlers -----------------------------------------------

    def _handle_abd_query(self, src: str, query: AbdQuery):
        node = self.node
        yield from node._net_core().execute(CYCLE_COSTS["dirty_map_op"])
        runtime = node.vnodes.get(query.vnode_id)
        if runtime is None or runtime.state == JOINING or not node.alive:
            vote = AbdVote(query.vnode_id, query.key,
                           status=STATUS_UNAVAILABLE)
            return vote, vote.wire_bytes()
        stamp = self.stamp_of(query.vnode_id, query.key)
        value = None
        status = STATUS_OK
        if query.want_value:
            probe = KVRequest("get", query.key, vnode_id=query.vnode_id,
                              tenant="__abd__")
            # The value probe yields, so a concurrent abd_commit can
            # land mid-read and leave the vote pairing the new value
            # with the stamp read above.  Re-read the stamp after the
            # probe and re-probe until the pair is consistent (one
            # extra round suffices unless commits keep racing).
            for _ in range(3):
                result = yield from node._execute(runtime, probe)
                after = self.stamp_of(query.vnode_id, query.key)
                if after == stamp:
                    break
                stamp = after
            value = result.value
            if not result.ok:
                status = (STATUS_NOT_FOUND
                          if result.status == STATUS_NOT_FOUND
                          else STATUS_UNAVAILABLE)
        vote = AbdVote(query.vnode_id, query.key, stamp, value, status)
        return vote, vote.wire_bytes()

    def _handle_abd_commit(self, src: str, commit: AbdCommit):
        node = self.node
        yield from node._net_core().execute(
            CYCLE_COSTS["replication_forward"])
        runtime = node.vnodes.get(commit.vnode_id)
        if runtime is None or runtime.state == JOINING or not node.alive:
            return STATUS_UNAVAILABLE, 16
        current = self.stamp_of(commit.vnode_id, commit.key)
        # Stamps are unique per op (coordinator sequence in the writer
        # component), so an equal stamp is a re-delivery of the write
        # already applied here — idempotent OK, not a silent drop of a
        # different value.
        if commit.stamp > current:
            body = KVRequest(commit.op, commit.key, commit.value,
                             commit.vnode_id, tenant="__abd__")
            result = yield from node._execute(runtime, body)
            if not (result.ok or result.status == STATUS_NOT_FOUND):
                return result.status, 16
            self._set_stamp(commit.vnode_id, commit.key, commit.stamp)
            runtime.stats.quorum_commits += 1
        return STATUS_OK, 16

    # -- recovery ------------------------------------------------------------

    def replay(self, runtime, record):
        """Re-commit one journaled write at its original stamp.

        A query quorum first checks whether a stamp at least as new is
        already in place (the ack was lost, or a later write
        superseded the record); otherwise the commit phase re-runs
        against the current replica group.  Raises when no quorum is
        reachable, keeping the record journaled.
        """
        node = self.node
        chain = node.local_ring.chain_ids_for_key(record.key)
        if not chain:
            return False
        majority = len(chain) // 2 + 1
        own = runtime.vnode_id if runtime.vnode_id in chain else None
        peers = self._peers(chain, own or "")
        local_votes = 1 if own else 0
        calls = []
        for vnode_id, address in peers:
            query = AbdQuery(vnode_id, record.key)
            calls.append(node.rpc.call(
                address, "abd_query", query, query.wire_bytes(),
                timeout_us=self.quorum_timeout_us))
        votes = yield from self._gather(
            calls, majority - local_votes,
            usable=lambda v: v.status != STATUS_UNAVAILABLE)
        votes = [v for v in votes if v.status != STATUS_UNAVAILABLE]
        if len(votes) + local_votes < majority:
            raise RuntimeError(
                "no query quorum for replay of %r" % (record.key,))
        top = self.stamp_of(own, record.key) if own else ZERO_STAMP
        for vote in votes:
            top = max(top, vote.stamp)
        stamp = record.stamp if isinstance(record.stamp, tuple) \
            else ZERO_STAMP
        if top >= stamp:
            return False
        need = majority - local_votes
        if own:
            body = KVRequest(record.op, record.key, record.value, own,
                             tenant="__wal__")
            result = yield from node._execute(runtime, body)
            if result.ok or result.status == STATUS_NOT_FOUND:
                self._set_stamp(own, record.key, stamp)
        committed = yield from self._commit_quorum(
            runtime, record.op, record.key, record.value, stamp, peers,
            need)
        if not committed:
            raise RuntimeError(
                "no commit quorum for replay of %r" % (record.key,))
        return True
