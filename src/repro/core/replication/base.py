"""The pluggable replication-policy interface.

A :class:`ReplicationPolicy` owns everything about how one node's
writes reach its peers and how reads find a consistent value: the
write fan-out, the acknowledgment flow, dirty-read resolution, and
the WAL-replay step that runs when a crashed node recovers.  The
node (:class:`repro.core.jbof.JBOFNode`) keeps the protocol-neutral
machinery — view validation, engine execution, COPY migration — and
delegates every replication decision to its policy object.

Policies are registered by name (``"chain"``, ``"craq"``, ``"abd"``)
and selected through ``ClusterConfig(replication_protocol=...)``.
Adding a protocol is a drop-in: subclass :class:`ReplicationPolicy`,
implement the hooks, and call :func:`register_protocol` — no node or
cluster changes needed.

Digest discipline: constructing a policy and registering its RPC
handlers creates no simulation events, so protocol selection never
perturbs the schedule of runs that don't exercise the new paths.
"""

from __future__ import annotations

import enum
import warnings
from typing import Dict, List, Optional


class DirtyReadMode(str, enum.Enum):
    """How a non-tail chain replica resolves a read of a dirty key.

    * ``SHIP`` — forward the whole request envelope to the tail,
      LEED's CRRS request shipping (§3.7);
    * ``CRAQ`` — send a small version query to the tail and serve
      locally when this replica already holds the committed version
      (the alternative the paper rejected for its internal traffic).

    The enum subclasses :class:`str`, so ``DirtyReadMode.SHIP ==
    "ship"`` holds and existing string comparisons keep working.
    Passing bare strings where a mode is expected is **deprecated**:
    they are still coerced by :meth:`coerce` (with a
    ``DeprecationWarning``), but new code should pass the members.
    """

    SHIP = "ship"
    CRAQ = "craq"

    @classmethod
    def coerce(cls, value: Optional[object]) -> Optional["DirtyReadMode"]:
        """Normalize a mode argument.

        ``None`` passes through (callers apply their own default);
        members pass through; strings are coerced with a
        ``DeprecationWarning`` (kept for one release).  Anything else
        raises ``ValueError`` listing the valid modes.
        """
        if value is None or isinstance(value, cls):
            return value
        try:
            member = cls(value)
        except ValueError:
            raise ValueError(
                "invalid dirty-read mode %r; valid modes: %s"
                % (value, ", ".join(mode.value for mode in cls)))
        warnings.warn(
            "passing a bare string for dirty_read_mode is deprecated; "
            "use DirtyReadMode.%s" % member.name,
            DeprecationWarning, stacklevel=3)
        return member

    def __str__(self) -> str:
        return self.value


class ReplicationPolicy:
    """Base class for replication protocols.

    One policy instance lives on each :class:`JBOFNode`; it reaches
    the node's RPC endpoint, ring view, vnode runtimes, and engine
    helpers through ``self.node``.  The read/write hooks are
    simulation generators invoked from the node's KV dispatch —
    ``yield from`` delegation, so a hook that performs the same
    operations as the code it replaced produces the same event
    schedule.

    Hook contract (all receive the validated ``(runtime, request,
    body, chain)`` of a KV command whose view check already passed):

    * :meth:`on_client_write` — a write entering the protocol at this
      replica (``hop == 0``); must eventually answer ``request``.
    * :meth:`on_forward` — a write arriving from a peer replica
      (``hop > 0``); chain protocols continue the chain here.
    * :meth:`serve_read` — a GET addressed to this replica; must
      answer ``request`` (possibly by forwarding the envelope).
    * :meth:`on_ack` — the protocol's acknowledgment handler (chain's
      backward ack; unused by quorum protocols).
    * :meth:`on_membership_change` / :meth:`on_peer_failure` —
      synchronous view-change notifications (no events allowed).
    * :meth:`replay` — WAL recovery: re-establish one journaled write
      in the current view, returning True (re-proposed) or False
      (already durable / no longer placeable); raise to keep the
      record journaled for a later attempt.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    def __init__(self, node):
        self.node = node

    # -- wiring --------------------------------------------------------------

    def register_handlers(self) -> None:
        """Register this protocol's RPC methods on the node."""

    def _wal(self, runtime):
        """The runtime's WAL, or None when journaling is disabled."""
        if not getattr(self.node.options, "wal_enabled", True):
            return None
        return getattr(runtime, "wal", None)

    # -- datapath hooks ------------------------------------------------------

    def on_client_write(self, runtime, request, body, chain):
        raise NotImplementedError
        yield  # pragma: no cover - generator marker

    def on_forward(self, runtime, request, body, chain):
        raise NotImplementedError
        yield  # pragma: no cover - generator marker

    def serve_read(self, runtime, request, body, chain):
        raise NotImplementedError
        yield  # pragma: no cover - generator marker

    def on_ack(self, src: str, ack):
        raise NotImplementedError
        yield  # pragma: no cover - generator marker

    def fast_read_local(self, runtime, body, chain) -> bool:
        """Whether the fast datapath may serve this GET locally,
        callback-style, without entering :meth:`serve_read`.  Only
        protocols whose local read is linearizable for the given
        (replica, key) state may return True."""
        return False

    # -- control-plane hooks -------------------------------------------------

    def on_membership_change(self, update) -> None:
        """A new ring view was installed.  Synchronous; no events."""

    def on_peer_failure(self, vnode_id: str) -> None:
        """A vnode left the ring (crash or leave).  Synchronous."""

    # -- recovery ------------------------------------------------------------

    def replay(self, runtime, record):
        """Generator: re-establish one WAL record in the current view."""
        raise NotImplementedError
        yield  # pragma: no cover - generator marker

    def committed_stamp(self, runtime, key: bytes):
        """The protocol's committed ordering stamp for ``key`` at this
        replica (chain version int, ABD timestamp tuple).  Conformance
        tests use this to check per-key monotonicity."""
        return 0

    def migration_stamp(self, runtime, key: bytes) -> int:
        """Monotonic per-key stamp for COPY/mirror migration ordering.

        Captured at the source when a pair is scanned (COPY) or
        committed (mirror) and compared at the destination, so a scan
        snapshot that was buffered across a newer committed write
        cannot be applied over it.  Chain replicas count applies in
        ``applied_version``; quorum protocols override with their own
        ordering stamp.
        """
        return runtime.applied_version.get(key, 0)

    def on_migrated(self, runtime, key: bytes, stamp) -> None:
        """A COPY/mirror pair for ``key`` was applied at this replica
        with the source's migration ``stamp``.  Synchronous; no events.

        Protocols whose read quorums compare per-key stamps across
        replicas must adopt the migrated stamp here: after a ring
        change the destination holds the value but would otherwise
        vote the zero stamp, letting a stale pre-change replica outvote
        it and read-repair an acked write away.  Chain replication
        keeps the default no-op — its counters are per-replica and
        reads serialize through the tail, never by stamp comparison.
        """

    def __repr__(self):
        return "<%s on %s>" % (type(self).__name__, self.node.address)


#: name -> policy class.  Populated by register_protocol at import
#: time; repro.core.replication registers the built-in protocols.
_REGISTRY: Dict[str, type] = {}


def register_protocol(cls: type) -> type:
    """Register a policy class under ``cls.name`` (decorator-friendly)."""
    _REGISTRY[cls.name] = cls
    return cls


def protocol_names() -> List[str]:
    """Registered protocol names, sorted for stable error messages."""
    return sorted(_REGISTRY)


def make_policy(name: str, node) -> ReplicationPolicy:
    """Instantiate the protocol registered under ``name`` for ``node``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown replication protocol %r; registered protocols: %s"
            % (name, ", ".join(protocol_names())))
    return cls(node)
