"""Chain replication (CRRS) and the CRAQ-style variant (§3.7).

Behavior-preserving ports of the write/read/ack paths that used to
live on :class:`JBOFNode` (``_serve_write`` / ``_serve_get`` /
``_send_ack`` / ``_handle_chain_ack`` / ``_handle_version_query``).
The generator bodies perform the same operations in the same order,
so schedules — and their digests — are byte-identical to the welded-in
implementation.

On top of the port, every replicated write journals an intent in the
partition's WAL (:mod:`repro.core.wal`) before executing: non-tail
replicas retire the intent when the backward ack arrives, the tail
retires it at its commitment point.  Journaling is pure memory, so it
adds no events.
"""

from __future__ import annotations

from typing import List

from repro.core.protocol import (
    STATUS_NACK,
    STATUS_NOT_FOUND,
    STATUS_OK,
    ChainAck,
    KVReply,
    KVRequest,
)
from repro.core.replication.base import ReplicationPolicy, register_protocol
from repro.hw.cpu import CYCLE_COSTS

#: Wire size of one CRAQ-style version query / response.
VERSION_QUERY_BYTES = 24

#: RPC deadline for recovery-replay calls (crash recovery runs off
#: the hot path; generous so COPY-congested links don't fail replay).
REPLAY_TIMEOUT_US = 1_000_000.0


@register_protocol
class ChainReplication(ReplicationPolicy):
    """LEED's CRRS chain: mark dirty -> execute -> forward; the tail
    commits, answers the client directly, and starts the backward ack
    cascade; dirty reads ship the request envelope to the tail."""

    name = "chain"

    def register_handlers(self) -> None:
        rpc = self.node.rpc
        rpc.register("chain_ack", self.on_ack)
        rpc.register("version_query", self._handle_version_query)

    # -- write path (port of JBOFNode._serve_write) --------------------------

    def on_client_write(self, runtime, request, body, chain):
        yield from self._write(runtime, request, body, chain)

    def on_forward(self, runtime, request, body, chain):
        yield from self._write(runtime, request, body, chain)

    def _write(self, runtime, request, body, chain):
        node = self.node
        wal = self._wal(runtime)
        is_tail = body.hop == len(chain) - 1
        # Client retries make writes at-least-once: an attempt that sat
        # in a COPY-congested queue past its deadline may have been
        # superseded by a retry (and by later acked writes).  Refuse it
        # at the chain entry (nothing applied yet, clean drop) and at
        # the commitment point.  On a tail drop the upstream replicas
        # keep the zombie value but their dirty bits stay set — no ack
        # cascade runs — so every read of the key ships to the tail
        # until the retry commits and its own cascade clears them.
        # The client stopped listening at the deadline; no reply owed.
        if (body.op != "get" and body.deadline_us is not None
                and node.sim.now > body.deadline_us
                and (body.hop == 0 or is_tail)):
            runtime.stats.writes_expired += 1
            return
        if not is_tail:
            runtime.mark_dirty(body.key)
            version = runtime.applied_version.get(body.key, 0) + 1
            runtime.applied_version[body.key] = version
            record = None
            if wal is not None:
                record = wal.append(body.op, body.key, body.value, version,
                                    ring_version=node.local_ring.version)
            result = yield from node._execute(runtime, body)
            if not result.ok and result.status != STATUS_NOT_FOUND:
                # Local failure (e.g. store full): surface immediately.
                # Retire by lsn — wal.ack(key) pops the FIFO-oldest
                # intent for the key, which with an earlier in-flight
                # write still awaiting its backward ack would retire
                # that write's record instead of this one's.
                runtime.clear_dirty(body.key)
                if record is not None:
                    wal.ack_record(record.lsn)
                node._respond(request,
                              node._reply_for(runtime, body, result))
                return
            runtime.stats.writes_forwarded += 1
            next_id = chain[body.hop + 1]
            next_vnode = node.local_ring.vnodes.get(next_id)
            if next_vnode is None:
                runtime.clear_dirty(body.key)
                if record is not None:
                    wal.ack_record(record.lsn)
                node._respond(request, KVReply(
                    STATUS_NACK, ring_version=node.local_ring.version))
                return
            yield from node._net_core().execute(
                CYCLE_COSTS["replication_forward"])
            forwarded = KVRequest(body.op, body.key, body.value, next_id,
                                  body.ring_version, body.hop + 1,
                                  body.tenant, trace=body.trace,
                                  deadline_us=body.deadline_us)
            node.rpc.forward(next_vnode.jbof_address, request, forwarded,
                             forwarded.wire_bytes())
            return
        # Tail: commitment point.
        version = runtime.applied_version.get(body.key, 0) + 1
        runtime.applied_version[body.key] = version
        runtime.committed_version[body.key] = version
        record = None
        if wal is not None:
            record = wal.append(body.op, body.key, body.value, version,
                                ring_version=node.local_ring.version)
        result = yield from node._execute(runtime, body)
        if record is not None:
            # The tail IS the commit: the intent is durable now.
            wal.ack_record(record.lsn)
        runtime.stats.writes_committed += 1
        node._respond(request, node._reply_for(runtime, body, result))
        # Backward ack cascade clears dirty bits.
        if len(chain) > 1:
            self.send_ack(chain, len(chain) - 2, body.key)
        # Mirror committed writes of ranges being migrated (§3.8.1:
        # "incoming PUTs ... might be forwarded to the new virtual
        # node depending on if their keys are copied").
        if result.ok and body.op == "put":
            node._mirror_write(runtime.vnode_id, body.key, body.value,
                               version)

    def send_ack(self, chain: List[str], index: int, key: bytes) -> None:
        node = self.node
        if index < 0:
            return
        vnode = node.local_ring.vnodes.get(chain[index])
        if vnode is None:
            return
        ack = ChainAck(key=key, vnode_id=chain[index], chain=list(chain),
                       index=index)
        node.rpc.notify(vnode.jbof_address, "chain_ack", ack,
                        ack.wire_bytes())

    def on_ack(self, src: str, ack: ChainAck):
        node = self.node
        yield from node._net_core().execute(CYCLE_COSTS["dirty_map_op"])
        runtime = node.vnodes.get(ack.vnode_id)
        if runtime is not None:
            runtime.clear_dirty(ack.key)
            wal = self._wal(runtime)
            if wal is not None:
                wal.ack(ack.key)
        self.send_ack(ack.chain, ack.index - 1, ack.key)
        return None

    # -- read path (port of JBOFNode._serve_get) -----------------------------

    def serve_read(self, runtime, request, body, chain):
        node = self.node
        is_tail = body.hop == len(chain) - 1
        if not is_tail and runtime.is_dirty(body.key):
            tail_id = chain[-1]
            tail_vnode = node.local_ring.vnodes.get(tail_id)
            if tail_vnode is None:
                node._respond(request, KVReply(
                    STATUS_NACK, ring_version=node.local_ring.version))
                return
            served = yield from self._resolve_dirty_read(
                runtime, request, body, tail_id, tail_vnode)
            if served:
                return
            # Request shipping: the tail holds the committed latest value.
            runtime.stats.reads_shipped += 1
            shipped = KVRequest("get", body.key, None, tail_id,
                                body.ring_version, len(chain) - 1,
                                body.tenant, trace=body.trace)
            node.rpc.forward(tail_vnode.jbof_address, request, shipped,
                             shipped.wire_bytes())
            yield node.sim.timeout(0)
            return
        result = yield from node._execute(runtime, body)
        runtime.stats.reads_served += 1
        node._respond(request, node._reply_for(runtime, body, result))

    def _resolve_dirty_read(self, runtime, request, body, tail_id,
                            tail_vnode):
        """Generator hook: try to answer a dirty read locally; return
        True when the request was served.  Plain chain never does —
        dirty reads always ship (no yields, so delegating through this
        hook leaves the event schedule untouched)."""
        return False
        yield  # pragma: no cover - generator marker

    def fast_read_local(self, runtime, body, chain) -> bool:
        # Tail reads and clean-replica reads are linearizable locally.
        return body.hop == len(chain) - 1 or not runtime.is_dirty(body.key)

    def _handle_version_query(self, src: str, body: dict):
        """CRAQ-style: report the committed version of a key (tail)."""
        node = self.node
        yield from node._net_core().execute(CYCLE_COSTS["dirty_map_op"])
        runtime = node.vnodes.get(body["vnode"])
        committed = 0
        if runtime is not None:
            committed = runtime.committed_version.get(body["key"], 0)
        return committed, VERSION_QUERY_BYTES

    def committed_stamp(self, runtime, key: bytes):
        return runtime.committed_version.get(
            key, runtime.applied_version.get(key, 0))

    # -- recovery ------------------------------------------------------------

    def replay(self, runtime, record):
        """Re-propose one journaled write through the current chain.

        A version query to the current tail skips records the chain
        already committed at an equal-or-newer version (the common
        case: only the backward ack was lost to the crash).  Version
        counters are not comparable across ring reconfigurations, so a
        record journaled under an older ring epoch is *never*
        re-proposed: the chain may have accepted newer writes under
        fresh counters, and replaying the stale value would overwrite
        an acknowledged update (a real lost-acked-write the scenario
        suite caught).  Dropping it is safe — the intent's client
        never received an ack, so either outcome is linearizable.
        """
        node = self.node
        if record.ring_version and node.local_ring.version != record.ring_version:
            return False
        for attempt in range(3):
            ring = node.local_ring
            chain = ring.chain_ids_for_key(record.key)
            if not chain:
                return False
            tail_vnode = ring.vnodes.get(chain[-1])
            if attempt == 0 and tail_vnode is not None:
                try:
                    committed = yield node.rpc.call(
                        tail_vnode.jbof_address, "version_query",
                        {"vnode": chain[-1], "key": record.key},
                        VERSION_QUERY_BYTES, timeout_us=REPLAY_TIMEOUT_US)
                except Exception:
                    committed = None
                if (committed is not None
                        and isinstance(record.stamp, int)
                        and committed >= record.stamp):
                    return False
            head_vnode = ring.vnodes.get(chain[0])
            if head_vnode is None:
                return False
            proposal = KVRequest(record.op, record.key, record.value,
                                 chain[0], ring.version, 0,
                                 tenant="__wal__")
            reply = yield node.rpc.call(
                head_vnode.jbof_address, "kv", proposal,
                proposal.wire_bytes(), timeout_us=REPLAY_TIMEOUT_US)
            if reply.status == STATUS_NACK:
                # Stale view: refresh from the hinted version's owner
                # (the control-plane pull already ran; just retry — the
                # NACK reply carried the newer ring version and the
                # next membership push installs it).
                yield node.sim.timeout(1_000.0)
                continue
            if reply.status in (STATUS_OK, STATUS_NOT_FOUND):
                return True
            raise RuntimeError(
                "replay of %s/%r failed with %s"
                % (runtime.vnode_id, record.key, reply.status))
        raise RuntimeError(
            "replay of %s/%r kept NACKing" % (runtime.vnode_id, record.key))


@register_protocol
class CraqChain(ChainReplication):
    """Chain replication with CRAQ-style version queries: a dirty
    replica asks the tail which version is committed and serves
    locally when it is already up to date (§3.7's rejected
    alternative — more internal traffic, kept for the ablation)."""

    name = "craq"

    def _resolve_dirty_read(self, runtime, request, body, tail_id,
                            tail_vnode):
        node = self.node
        # CRAQ-style: ask the tail which version is committed;
        # serve locally when this replica already has it.
        runtime.stats.version_queries += 1
        runtime.stats.version_query_bytes += 2 * VERSION_QUERY_BYTES
        try:
            committed = yield node.rpc.call(
                tail_vnode.jbof_address, "version_query",
                {"vnode": tail_id, "key": body.key},
                VERSION_QUERY_BYTES, timeout_us=50_000.0)
        except Exception:
            committed = None
        local = runtime.applied_version.get(body.key, 0)
        if committed is not None and committed <= local:
            result = yield from node._execute(runtime, body)
            runtime.stats.reads_served += 1
            node._respond(request, node._reply_for(runtime, body, result))
            return True
        return False
