"""Pluggable replication protocols for LEED nodes.

Importing this package registers the built-in protocols:

* ``"chain"`` — :class:`ChainReplication`, LEED's CRRS chain (§3.7);
* ``"craq"``  — :class:`CraqChain`, the version-query variant;
* ``"abd"``   — :class:`AbdQuorum`, majority quorums with per-key
  logical timestamps.

Select one with ``ClusterConfig(replication_protocol="...")``; see
``docs/replication.md`` for the interface and how to add a protocol.
"""

from repro.core.replication.abd import ZERO_STAMP, AbdQuorum
from repro.core.replication.base import (
    DirtyReadMode,
    ReplicationPolicy,
    make_policy,
    protocol_names,
    register_protocol,
)
from repro.core.replication.chain import (
    VERSION_QUERY_BYTES,
    ChainReplication,
    CraqChain,
)

__all__ = [
    "ReplicationPolicy", "DirtyReadMode",
    "make_policy", "protocol_names", "register_protocol",
    "ChainReplication", "CraqChain", "AbdQuorum",
    "VERSION_QUERY_BYTES", "ZERO_STAMP",
]
