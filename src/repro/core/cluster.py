"""Cluster assembly: wire JBOFs, clients, and the control plane.

This is the top-level convenience API most examples and benchmarks
use::

    with LeedCluster(num_jbofs=3, num_clients=4) as cluster:
        ... drive cluster.clients[i].get/put/delete inside processes ...
        cluster.sim.run(until=...)

Entering the ``with`` block publishes the initial ring
(:meth:`LeedCluster.start`, idempotent); leaving it (or calling
:meth:`LeedCluster.shutdown`) stops the background heartbeat,
failure-monitor and metrics-sampler processes so ``sim.run()`` with
no deadline drains the event heap.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from repro.core.datastore import StoreConfig
from repro.core.client import FrontEndClient
from repro.core.jbof import JBOFNode, LeedOptions
from repro.core.membership import ControlPlane
from repro.core.protocol import ReadPolicy
from repro.core.replication import protocol_names
from repro.hw.platforms import STINGRAY, PlatformSpec
from repro.net.topology import NIC_100G, Network, NicProfile
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.power.meter import EnergyReport, cluster_energy
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class ClusterConfig:
    """Shape of a LEED cluster."""

    num_jbofs: int = 3
    ssds_per_jbof: int = 4
    vnodes_per_ssd: int = 1
    num_clients: int = 2
    replication: int = 3
    platform: PlatformSpec = field(default_factory=lambda: STINGRAY)
    options: LeedOptions = field(default_factory=LeedOptions)
    #: Client-side feature switches (ablations).
    flow_control: bool = True
    crrs: bool = True
    #: GET replica choice (:class:`ReadPolicy`, or its string value).
    read_policy: Optional[ReadPolicy] = None
    #: Replication protocol every node runs ("chain" | "craq" | "abd",
    #: or any name registered via
    #: :func:`repro.core.replication.register_protocol`).  Validated
    #: at construction: unknown names fail here, not mid-run.
    replication_protocol: str = "chain"
    seed: int = 0
    heartbeat_timeout_us: float = 200_000.0
    #: Node NIC profile (100 GbE RDMA for JBOFs, 1 GbE USB for Pis).
    nic_profile: Optional[NicProfile] = None
    #: Node implementation: JBOFNode (LEED) or a baseline subclass.
    node_class: type = JBOFNode
    #: Store config forwarded verbatim to the node class (its type
    #: depends on the node class: StoreConfig / FawnConfig / ...).
    store: object = field(default_factory=StoreConfig)
    #: Trace every Nth client request (0 disables tracing).
    trace_sample_interval: int = 0
    #: Metrics sampling period for :class:`MetricsRegistry`
    #: (0 disables the background sampler).
    metrics_interval_us: float = 0.0
    #: Partition-parallel execution (:mod:`repro.sim.parallel`).
    #: 0 = the classic single-simulator engine; 1 = sharded engine
    #: stepped in-process (one shard per JBOF plus the coordinator
    #: shard holding clients and the control plane); N >= 2 = shards
    #: spread over N OS processes (forked lazily at the first run).
    #: ``workers=1`` and ``workers=N`` produce byte-identical
    #: per-shard schedule digests and figure metrics; with
    #: ``workers >= 2`` node-object state in this process goes stale
    #: after the first run — use :meth:`LeedCluster.shard_reports`
    #: (and the probe-backed :meth:`LeedCluster.energy_joules`) for
    #: cross-shard reporting.
    workers: int = 0
    #: Parallel-engine wall-clock tuning (only meaningful with
    #: ``workers > 0``; see :class:`repro.sim.parallel.EngineTuning`).
    #: The defaults are the tuned values pinned by the
    #: ``repro.bench.explore`` engine sweep (docs/explore.md): elide
    #: every idle shard-window and leave windows at their full
    #: lookahead bound.  None of these knobs can change figure
    #: metrics — they trade barrier overhead for memory only.
    engine_elision_threshold_us: float = 0.0
    engine_window_cap_us: float = 0.0
    engine_slab_region_bytes: int = 1 << 20
    #: Order-dependence sanitizer (``repro.lint.sanitize``): break
    #: same-timestamp scheduling ties with a named RNG stream instead
    #: of FIFO order.  Serial engine only (``workers == 0``).
    sanitize: bool = False
    #: Seed for the ``sim.sanitize`` permutation stream; distinct
    #: seeds yield distinct legal schedules of the same model.
    sanitize_seed: int = 0

    def __post_init__(self):
        names = protocol_names()
        if self.replication_protocol not in names:
            raise ValueError(
                "unknown replication protocol %r; registered protocols: %s"
                % (self.replication_protocol, ", ".join(names)))

    @classmethod
    def from_overrides(cls, **overrides) -> "ClusterConfig":
        """Build a config from keyword overrides, strictly validated.

        Unknown keys raise :class:`TypeError` naming the valid fields
        — a typo'd override must not silently fall back to a default.
        """
        valid = [spec.name for spec in fields(cls)]
        unknown = sorted(set(overrides) - set(valid))
        if unknown:
            raise TypeError(
                "unknown ClusterConfig field(s) %s; valid fields: %s"
                % (", ".join(repr(k) for k in unknown), ", ".join(valid)))
        return cls(**overrides)


class LeedCluster:
    """A complete simulated LEED deployment."""

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides):
        if config is None:
            config = ClusterConfig.from_overrides(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.config = config
        self.engine = None
        if config.sanitize and config.workers > 0:
            raise ValueError(
                "sanitize mode needs workers == 0: the parallel engine's "
                "windowed dispatcher depends on FIFO tie order")
        if config.workers > 0:
            if config.workers >= 2 and config.trace_sample_interval:
                raise ValueError(
                    "request tracing needs workers <= 1: trace contexts "
                    "cannot cross worker-process boundaries")
            if config.workers >= 2 and config.metrics_interval_us > 0:
                raise ValueError(
                    "the background metrics sampler needs workers <= 1: "
                    "it reads node state across shards")
            from repro.sim.parallel import CoordinatorSimulator
            self.sim = CoordinatorSimulator()
            self._shard_sims = {0: self.sim}
            for index in range(config.num_jbofs):
                self._shard_sims[index + 1] = Simulator()
        else:
            self.sim = Simulator(sanitize=config.sanitize,
                                 sanitize_seed=config.sanitize_seed)
            self._shard_sims = {0: self.sim}
        self.rng = RngRegistry(config.seed)
        self.network = Network(self.sim)
        #: Observability layer: spans + metrics for this deployment.
        self.tracer = Tracer(self.sim)
        self.metrics = MetricsRegistry(self.sim)
        self.control_plane = ControlPlane(
            self.sim, self.network, replication=config.replication,
            heartbeat_timeout_us=config.heartbeat_timeout_us,
            replication_protocol=config.replication_protocol)
        self.jbofs: List[JBOFNode] = []
        for index in range(config.num_jbofs):
            node = config.node_class(
                self._shard_sims.get(index + 1, self.sim),
                self.network, "jbof%d" % index,
                spec=config.platform, num_ssds=config.ssds_per_jbof,
                vnodes_per_ssd=config.vnodes_per_ssd,
                store_config=config.store, options=config.options,
                rng=self.rng.fork("jbof%d" % index),
                nic_profile=config.nic_profile,
                control_plane_address=self.control_plane.address,
                replication_protocol=config.replication_protocol)
            self.jbofs.append(node)
            self.control_plane.register_jbof(node)
        self.clients: List[FrontEndClient] = []
        for index in range(config.num_clients):
            client = FrontEndClient(
                self.sim, self.network, "client%d" % index,
                control_plane_address=self.control_plane.address,
                flow_control=config.flow_control, crrs=config.crrs,
                read_policy=config.read_policy,
                tracer=self.tracer,
                trace_sample_interval=config.trace_sample_interval)
            if getattr(config.options, "fast_datapath", False):
                client.turbo = True
                client.flow.inline_rounds = True
                client.rpc.coalesce = True
                client.rpc.coalesce_limit = getattr(
                    config.options, "rpc_coalesce_limit", 8)
                client.rpc.qp.enable_fast_rx()
                client.rpc.enable_fast_dispatch()
            self.clients.append(client)
            self.control_plane.subscribe(client.address)
            self.metrics.register_histogram(
                "%s.latency" % client.address, client.stats.histogram)
        if config.workers > 0:
            from repro.sim.parallel import (EngineTuning, ParallelEngine,
                                            ShardPlan)
            plan = ShardPlan.for_cluster(
                self.control_plane.address,
                [client.address for client in self.clients],
                [node.address for node in self.jbofs])
            self.network.configure_shards(plan.shard_of, self._shard_sims)
            probes = {index + 1: self._node_probe(node)
                      for index, node in enumerate(self.jbofs)}
            self.engine = ParallelEngine(
                self.network, self._shard_sims, config.workers,
                probes=probes,
                tuning=EngineTuning(
                    elision_threshold_us=config.engine_elision_threshold_us,
                    window_cap_us=config.engine_window_cap_us,
                    slab_region_bytes=config.engine_slab_region_bytes))
            self.sim.bind_engine(self.engine)
        self._started = False
        self._shut_down = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Publish the initial ring to every node and client."""
        if self._started:
            return
        self.control_plane.bootstrap()
        # Give clients their initial view synchronously: a deployment
        # fetches the ring before serving traffic.
        payload = self.control_plane.membership_snapshot()
        for client in self.clients:
            client.apply_membership(payload)
        if self.config.metrics_interval_us > 0:
            self.metrics.sample_every(self.config.metrics_interval_us)
        self._started = True

    def shutdown(self) -> None:
        """Stop background processes so the event heap can drain.

        Stops every JBOF's heartbeat/maintenance loop, the control
        plane's failure monitor, and the metrics sampler.  Idempotent;
        also invoked when the cluster is used as a context manager.
        """
        if self._shut_down:
            return
        # Nodes are told to stop over the network, not through object
        # references: under partition-parallel execution the live node
        # state may be in another worker process, and using the same
        # RPC in every mode keeps serial and ``workers=1`` schedules
        # identical.  The notify lands on the next ``sim.run()`` (the
        # usual "shutdown then drain" pattern); crashed nodes are
        # partitioned and simply never hear it.
        for node in self.jbofs:
            self.control_plane.rpc.notify(node.address, "node_stop", None, 16)
        self.control_plane.stop()
        self.metrics.stop()
        self._shut_down = True

    def stop_workers(self) -> None:
        """Tear down parallel worker processes (no-op otherwise).

        Call after the final ``sim.run()``: the engine snapshots every
        shard's report first, so :meth:`shard_reports` and
        :meth:`energy_joules` keep answering from the snapshot.
        """
        if self.engine is not None:
            self.engine.stop_workers()

    def settle_shards(self) -> None:
        """Complete the global cut at shard 0's clock (no-op serially).

        After ``sim.run(until=event)`` under the parallel engine, other
        shards may still hold undispatched events earlier than shard
        0's clock.  Mid-run samplers (scenario gauges, energy meters)
        call this first so they observe the same cut a serial run
        would: everything strictly before ``sim.now`` executed, and
        every shard clock advanced to ``sim.now``.
        """
        if self.engine is not None:
            self.engine.settle(self.sim.now)

    def exchange_stats(self) -> Optional[Dict[str, int]]:
        """Barrier/exchange counters from the parallel engine.

        ``None`` on the serial engine.  See
        :class:`repro.sim.parallel.ExchangeStats` for the fields.
        """
        if self.engine is None:
            return None
        return self.engine.stats.as_dict()

    def __enter__(self) -> "LeedCluster":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- scenario hooks: fault injection & elasticity ---------------------------------
    #
    # These drive the production-scenario library (repro.scenarios).
    # Fault injection models *physical environment* actions — a power
    # cord pulled, a rack losing a node — so it necessarily touches
    # node objects directly; that is only sound on the serial engine,
    # where this process owns every node's live state.  The guard
    # enforces it, and the simlint suppressions below each carry that
    # justification.

    def _injection_target(self, index: int) -> JBOFNode:
        if self.config.workers > 0:
            raise ValueError(
                "scenario fault injection needs workers == 0: node state "
                "lives in worker processes under the parallel engine")
        return self.jbofs[index]

    def _elastic_guard(self) -> None:
        """Elasticity (add/remove JBOF) is sound up to ``workers == 1``.

        Unlike physical fault injection — which mutates a remote node's
        state at shard 0's clock and would diverge from the serial
        schedule — elasticity is driven through shard-0 construction
        and control-plane RPC.  ``workers >= 2`` stays forbidden: the
        forked processes' object graphs cannot grow a new shard.
        """
        if self.config.workers > 1 or (
                self.engine is not None and self.engine.forked):
            raise ValueError(
                "scenario elasticity needs workers <= 1: forked workers' "
                "shard plans are fixed at construction")

    def crash_jbof(self, index: int) -> str:
        """Fail-stop JBOF ``index`` (heartbeats cease, traffic drops).

        Returns the crashed node's address.  The control plane's
        failure monitor will detect the silence and re-replicate.
        """
        node = self._injection_target(index)
        node.crash()  # simlint: ignore[SIM006, SIM008] -- physical fail-stop injection; serial engine enforced above
        return node.address

    def recover_jbof(self, index: int) -> str:
        """Heal a fail-stopped JBOF (network rejoin + WAL replay)."""
        node = self._injection_target(index)
        node.recover()  # simlint: ignore[SIM006, SIM008] -- physical heal injection; serial engine enforced above
        return node.address

    def power_fail_jbof(self, index: int) -> str:
        """Pull the power on JBOF ``index``: DRAM state is lost."""
        node = self._injection_target(index)
        node.power_fail()  # simlint: ignore[SIM006, SIM008] -- physical power-loss injection; serial engine enforced above
        return node.address

    def power_restore_jbof(self, index: int):
        """Generator: restore power; flash scan rebuild + WAL replay.

        Returns the node's recovery report (see
        :meth:`JBOFNode.power_restore`).
        """
        node = self._injection_target(index)
        report = yield from node.power_restore()  # simlint: ignore[SIM006, SIM008] -- physical power-restore injection; serial engine enforced above
        # Power-on is control-plane-visible: stamp a fresh heartbeat so
        # the monitor doesn't count the outage gap against the node
        # before its first post-restore beat lands.
        self.control_plane.mark_alive(node.address)
        return report

    def drain_jbof(self, index: int):
        """Generator: gracefully leave every vnode on JBOF ``index``.

        The control plane migrates each range away (voluntary-leave
        COPY, §3.8.1); afterwards the node hosts no serving vnodes but
        keeps its runtimes, so :meth:`rejoin_jbof` can bring them back.
        """
        node = self._injection_target(index)
        for vnode_id in sorted(node.vnodes):
            if vnode_id in self.control_plane.vnodes:
                yield from self.control_plane.leave_vnode(vnode_id)

    def rejoin_jbof(self, index: int):
        """Generator: join every vnode on JBOF ``index`` back in."""
        node = self._injection_target(index)
        self.control_plane.mark_alive(node.address)
        for vnode_id in sorted(node.vnodes):
            yield from self.control_plane.join_vnode(vnode_id, node.address)

    def rolling_upgrade(self, version: str, pause_us: float = 0.0):
        """Generator: drain → replace → rejoin each JBOF in turn.

        The canonical zero-downtime upgrade: every node is emptied by
        voluntary leaves, its software replaced (fresh stores, new
        ``software_version``), then re-joined so COPY repopulates it —
        while the rest of the cluster keeps serving.  ``pause_us``
        inserts a settle gap between nodes (staged rollout).
        """
        for index in range(len(self.jbofs)):
            node = self._injection_target(index)
            yield from self.drain_jbof(index)
            node.upgrade(version)  # simlint: ignore[SIM006, SIM008] -- in-place binary replace on a drained node; serial engine enforced
            yield from self.rejoin_jbof(index)
            if pause_us > 0:
                yield self.sim.timeout(pause_us)

    def add_jbof(self):
        """Generator: provision a whole new JBOF and join its vnodes.

        Scale-out hook for the scenario autoscaler: builds a node with
        the cluster's stock geometry, registers it JOINING, then joins
        each vnode (COPY migrates the gained ranges in).  Returns the
        new node.

        Allowed up to ``workers == 1``: the sharded-but-in-process
        engine owns every object, and the new node lands on shard 0
        (the shard map defaults unlisted addresses there).  Attaching
        its NIC bumps the network's topology version, which makes the
        engine refresh its lookahead matrix — a joining NIC pair with
        a smaller cross-shard delay must tighten the windows.
        """
        self._elastic_guard()
        config = self.config
        index = len(self.jbofs)
        node = config.node_class(
            self.sim, self.network, "jbof%d" % index,
            spec=config.platform, num_ssds=config.ssds_per_jbof,
            vnodes_per_ssd=config.vnodes_per_ssd,
            store_config=config.store, options=config.options,
            rng=self.rng.fork("jbof%d" % index),
            nic_profile=config.nic_profile,
            control_plane_address=self.control_plane.address,
            replication_protocol=config.replication_protocol)
        self.jbofs.append(node)
        self.control_plane.register_joining_jbof(node)
        for vnode_id in sorted(node.vnodes):
            yield from self.control_plane.join_vnode(vnode_id, node.address)
        return node

    def remove_jbof(self, index: int):
        """Generator: drain JBOF ``index`` and power it down.

        The scale-in counterpart of :meth:`add_jbof`: every vnode
        leaves gracefully (data migrates away), the runtimes are
        retired, and the node stops its background loops.  The node
        object stays attached (idle) — rejoining later means fresh
        joins.  Like :meth:`add_jbof`, allowed up to ``workers == 1``;
        the drain and stop travel over control-plane RPC, and the only
        direct node access is reading its vnode set.
        """
        self._elastic_guard()
        node = self.jbofs[index]
        for vnode_id in sorted(node.vnodes):
            if vnode_id in self.control_plane.vnodes:
                yield from self.control_plane.remove_vnode(vnode_id)
        self.control_plane.forget_jbof(node.address)
        self.control_plane.rpc.notify(node.address, "node_stop", None, 16)

    # -- convenience -----------------------------------------------------------------

    def load(self, pairs, client_index: int = 0, parallelism: int = 16):
        """Generator: bulk-load (key, value) pairs through one client."""
        client = self.clients[client_index]
        pending = []
        for key, value in pairs:
            pending.append(self.sim.process(client.put(key, value)))
            if len(pending) >= parallelism:
                yield self.sim.all_of(pending)
                pending = []
        if pending:
            yield self.sim.all_of(pending)

    def total_completed_requests(self) -> int:
        """Client-visible successful operations so far."""
        return sum(c.stats.ok + c.stats.not_found for c in self.clients)

    @staticmethod
    def _node_probe(node):
        """Shard report payload for one JBOF, run by the owning worker."""
        return lambda: {
            "address": node.address,
            "energy_joules": cluster_energy([node.meter]),
            "requests_completed": node.requests_completed,
        }

    def enable_schedule_digests(self) -> None:
        """Turn on schedule digests for every shard simulator.

        Must be called before the first run when ``workers >= 2``
        (worker processes inherit the digest state at fork).
        """
        if self.engine is not None:
            self.engine.enable_schedule_digests()
        else:
            self.sim.enable_schedule_digest()

    def shard_reports(self) -> Dict[int, dict]:
        """Per-shard ``{now, events_dispatched, schedule_digest, ...}``.

        In parallel mode the reports come from whichever process owns
        each shard; the serial engine reports its single shard 0.
        """
        if self.engine is not None:
            return self.engine.collect()
        return {0: {
            "shard": 0,
            "now": self.sim.now,
            "events_dispatched": self.sim.events_dispatched,
            "schedule_digest": self.sim.schedule_digest,
            "digest_events": self.sim.schedule_digest_events,
        }}

    def shard_digests(self) -> Dict[int, Optional[str]]:
        """Schedule digest per shard (None when digests are disabled)."""
        return {sid: report["schedule_digest"]
                for sid, report in self.shard_reports().items()}

    def total_events_dispatched(self) -> int:
        """Events dispatched across every shard simulator."""
        if self.engine is not None:
            return sum(report["events_dispatched"]
                       for report in self.engine.collect().values())
        return self.sim.events_dispatched

    def energy_joules(self) -> float:
        """Total back-end energy so far (clients excluded, as in §4.3).

        Once parallel workers own the JBOF shards, the local node
        objects stop advancing — the figure comes from shard probes.
        """
        if self.engine is not None and self.engine.forked:
            return sum(report["probe"]["energy_joules"]
                       for report in self.engine.collect().values()
                       if "probe" in report)
        return cluster_energy([node.meter for node in self.jbofs])

    def energy_report(self, label: str = "") -> EnergyReport:
        """Requests-per-Joule summary for the run so far."""
        return EnergyReport(
            requests_completed=self.total_completed_requests(),
            elapsed_us=self.sim.now,
            energy_joules=self.energy_joules(),
            label=label)

    def all_vnode_stats(self) -> Dict[str, object]:
        """Per-vnode protocol statistics, keyed by vnode id.

        Serial-mode reporting only: with parallel workers the local
        node objects are stale fork-time copies (see
        :meth:`energy_joules` for the probe-based alternative).
        """
        stats = {}
        for node in self.jbofs:
            # Serial-mode diagnostics: workers own no vnode state here.
            for vnode_id, runtime in node.vnodes.items():  # simlint: ignore[SIM008]
                stats[vnode_id] = runtime.stats
        return stats

    def __repr__(self):
        return "<LeedCluster jbofs=%d clients=%d R=%d>" % (
            len(self.jbofs), len(self.clients), self.config.replication)
