"""Cluster assembly: wire JBOFs, clients, and the control plane.

This is the top-level convenience API most examples and benchmarks
use::

    with LeedCluster(num_jbofs=3, num_clients=4) as cluster:
        ... drive cluster.clients[i].get/put/delete inside processes ...
        cluster.sim.run(until=...)

Entering the ``with`` block publishes the initial ring
(:meth:`LeedCluster.start`, idempotent); leaving it (or calling
:meth:`LeedCluster.shutdown`) stops the background heartbeat,
failure-monitor and metrics-sampler processes so ``sim.run()`` with
no deadline drains the event heap.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from repro.core.datastore import StoreConfig
from repro.core.client import FrontEndClient
from repro.core.jbof import JBOFNode, LeedOptions
from repro.core.membership import ControlPlane
from repro.core.protocol import ReadPolicy
from repro.hw.platforms import STINGRAY, PlatformSpec
from repro.net.topology import NIC_100G, Network, NicProfile
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.power.meter import EnergyReport, cluster_energy
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry


@dataclass
class ClusterConfig:
    """Shape of a LEED cluster."""

    num_jbofs: int = 3
    ssds_per_jbof: int = 4
    vnodes_per_ssd: int = 1
    num_clients: int = 2
    replication: int = 3
    platform: PlatformSpec = field(default_factory=lambda: STINGRAY)
    options: LeedOptions = field(default_factory=LeedOptions)
    #: Client-side feature switches (ablations).
    flow_control: bool = True
    crrs: bool = True
    #: GET replica choice (:class:`ReadPolicy`, or its string value).
    read_policy: Optional[ReadPolicy] = None
    seed: int = 0
    heartbeat_timeout_us: float = 200_000.0
    #: Node NIC profile (100 GbE RDMA for JBOFs, 1 GbE USB for Pis).
    nic_profile: Optional[NicProfile] = None
    #: Node implementation: JBOFNode (LEED) or a baseline subclass.
    node_class: type = JBOFNode
    #: Store config forwarded verbatim to the node class (its type
    #: depends on the node class: StoreConfig / FawnConfig / ...).
    store: object = field(default_factory=StoreConfig)
    #: Trace every Nth client request (0 disables tracing).
    trace_sample_interval: int = 0
    #: Metrics sampling period for :class:`MetricsRegistry`
    #: (0 disables the background sampler).
    metrics_interval_us: float = 0.0

    @classmethod
    def from_overrides(cls, **overrides) -> "ClusterConfig":
        """Build a config from keyword overrides, strictly validated.

        Unknown keys raise :class:`TypeError` naming the valid fields
        — a typo'd override must not silently fall back to a default.
        """
        valid = [spec.name for spec in fields(cls)]
        unknown = sorted(set(overrides) - set(valid))
        if unknown:
            raise TypeError(
                "unknown ClusterConfig field(s) %s; valid fields: %s"
                % (", ".join(repr(k) for k in unknown), ", ".join(valid)))
        return cls(**overrides)


class LeedCluster:
    """A complete simulated LEED deployment."""

    def __init__(self, config: Optional[ClusterConfig] = None, **overrides):
        if config is None:
            config = ClusterConfig.from_overrides(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.config = config
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)
        self.network = Network(self.sim)
        #: Observability layer: spans + metrics for this deployment.
        self.tracer = Tracer(self.sim)
        self.metrics = MetricsRegistry(self.sim)
        self.control_plane = ControlPlane(
            self.sim, self.network, replication=config.replication,
            heartbeat_timeout_us=config.heartbeat_timeout_us)
        self.jbofs: List[JBOFNode] = []
        for index in range(config.num_jbofs):
            node = config.node_class(
                self.sim, self.network, "jbof%d" % index,
                spec=config.platform, num_ssds=config.ssds_per_jbof,
                vnodes_per_ssd=config.vnodes_per_ssd,
                store_config=config.store, options=config.options,
                rng=self.rng.fork("jbof%d" % index),
                nic_profile=config.nic_profile,
                control_plane_address=self.control_plane.address)
            self.jbofs.append(node)
            self.control_plane.register_jbof(node)
        self.clients: List[FrontEndClient] = []
        for index in range(config.num_clients):
            client = FrontEndClient(
                self.sim, self.network, "client%d" % index,
                control_plane_address=self.control_plane.address,
                flow_control=config.flow_control, crrs=config.crrs,
                read_policy=config.read_policy,
                tracer=self.tracer,
                trace_sample_interval=config.trace_sample_interval)
            if getattr(config.options, "fast_datapath", False):
                client.turbo = True
                client.flow.inline_rounds = True
                client.rpc.coalesce = True
                client.rpc.coalesce_limit = getattr(
                    config.options, "rpc_coalesce_limit", 8)
                client.rpc.qp.enable_fast_rx()
                client.rpc.enable_fast_dispatch()
            self.clients.append(client)
            self.control_plane.subscribe(client.address)
            self.metrics.register_histogram(
                "%s.latency" % client.address, client.stats.histogram)
        self._started = False
        self._shut_down = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Publish the initial ring to every node and client."""
        if self._started:
            return
        self.control_plane.bootstrap()
        # Give clients their initial view synchronously: a deployment
        # fetches the ring before serving traffic.
        payload = self.control_plane.membership_snapshot()
        for client in self.clients:
            client.apply_membership(payload)
        if self.config.metrics_interval_us > 0:
            self.metrics.sample_every(self.config.metrics_interval_us)
        self._started = True

    def shutdown(self) -> None:
        """Stop background processes so the event heap can drain.

        Stops every JBOF's heartbeat/maintenance loop, the control
        plane's failure monitor, and the metrics sampler.  Idempotent;
        also invoked when the cluster is used as a context manager.
        """
        if self._shut_down:
            return
        for node in self.jbofs:
            node.stop()
        self.control_plane.stop()
        self.metrics.stop()
        self._shut_down = True

    def __enter__(self) -> "LeedCluster":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- convenience -----------------------------------------------------------------

    def load(self, pairs, client_index: int = 0, parallelism: int = 16):
        """Generator: bulk-load (key, value) pairs through one client."""
        client = self.clients[client_index]
        pending = []
        for key, value in pairs:
            pending.append(self.sim.process(client.put(key, value)))
            if len(pending) >= parallelism:
                yield self.sim.all_of(pending)
                pending = []
        if pending:
            yield self.sim.all_of(pending)

    def total_completed_requests(self) -> int:
        """Client-visible successful operations so far."""
        return sum(c.stats.ok + c.stats.not_found for c in self.clients)

    def energy_joules(self) -> float:
        """Total back-end energy so far (clients excluded, as in §4.3)."""
        return cluster_energy([node.meter for node in self.jbofs])

    def energy_report(self, label: str = "") -> EnergyReport:
        """Requests-per-Joule summary for the run so far."""
        return EnergyReport(
            requests_completed=self.total_completed_requests(),
            elapsed_us=self.sim.now,
            energy_joules=self.energy_joules(),
            label=label)

    def all_vnode_stats(self) -> Dict[str, object]:
        """Per-vnode protocol statistics, keyed by vnode id."""
        stats = {}
        for node in self.jbofs:
            for vnode_id, runtime in node.vnodes.items():
                stats[vnode_id] = runtime.stats
        return stats

    def __repr__(self):
        return "<LeedCluster jbofs=%d clients=%d R=%d>" % (
            len(self.jbofs), len(self.clients), self.config.replication)
