"""Key-log data layout: key items, buckets, segments (§3.2.2-3.2.3).

The whole key space of a (virtual) node consists of segments; a
segment is a chain of up to M overflow buckets; a bucket is sized to
the SSD block and holds key items plus metadata.  When a segment is
written to the SSD it is serialized as a contiguous array of buckets,
so a GET fetches the whole segment with one NVMe read.

Wire formats (little-endian):

Key item   : key_hash u32 | klen u16 | vlen u32 | voffset u32 | ssd_id u8 | key
Bucket hdr : seg_id u32 | chain_len u8 | position u8 | nkeys u16 |
             head u32 | tail u32
Value entry: seg_id u32 | klen u16 | vlen u32 | key | value

The key item's ``ssd_id`` is the extension of §3.6: it identifies
which co-located SSD's value log holds the value, enabling the data
swapping mechanism to redirect overloaded writes.  ``vlen == 0``
marks a deletion (§3.3); empty values are therefore not storable and
the store rejects them at the API boundary.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

KEY_ITEM_HEADER = struct.Struct("<IHIIB")   # hash, klen, vlen, voffset, ssd_id
BUCKET_HEADER = struct.Struct("<IBBHII")    # seg_id, chain_len, position, nkeys, head, tail
VALUE_ENTRY_HEADER = struct.Struct("<HIHI")  # owner_id, seg_id, klen, vlen

#: Deletion marker: a key item whose value length is zero.
TOMBSTONE_VLEN = 0


def key_hash(key: bytes) -> int:
    """32-bit hash used for segment choice and in-bucket matching."""
    return zlib.crc32(key) & 0xFFFFFFFF


def segment_of(key: bytes, num_segments: int) -> int:
    """Map a key to its segment within one (virtual) node."""
    return key_hash(key) % num_segments


@dataclass
class KeyItem:
    """One key's index entry inside a bucket."""

    key: bytes
    vlen: int
    voffset: int
    ssd_id: int = 0
    khash: Optional[int] = None

    def __post_init__(self):
        if self.khash is None:
            self.khash = key_hash(self.key)

    @property
    def is_tombstone(self) -> bool:
        return self.vlen == TOMBSTONE_VLEN

    @property
    def wire_size(self) -> int:
        return KEY_ITEM_HEADER.size + len(self.key)

    def pack(self) -> bytes:
        """Serialize header + key bytes (the on-bucket wire format)."""
        return KEY_ITEM_HEADER.pack(self.khash, len(self.key), self.vlen,
                                    self.voffset, self.ssd_id) + self.key

    @classmethod
    def unpack_from(cls, buffer: bytes, offset: int) -> "KeyItem":
        khash, klen, vlen, voffset, ssd_id = KEY_ITEM_HEADER.unpack_from(
            buffer, offset)
        start = offset + KEY_ITEM_HEADER.size
        key = bytes(buffer[start:start + klen])
        return cls(key=key, vlen=vlen, voffset=voffset, ssd_id=ssd_id,
                   khash=khash)


@dataclass
class Bucket:
    """A block-sized container of key items."""

    seg_id: int
    position: int = 0
    items: List[KeyItem] = field(default_factory=list)
    head: int = 0
    tail: int = 0

    def bytes_used(self) -> int:
        """Serialized size of the bucket header plus its items."""
        return BUCKET_HEADER.size + sum(item.wire_size for item in self.items)

    def has_room(self, item: KeyItem, block_size: int) -> bool:
        """Whether ``item`` still fits in this block-sized bucket."""
        return self.bytes_used() + item.wire_size <= block_size

    def find(self, key: bytes, khash: int) -> Optional[KeyItem]:
        """Locate a key's item within this bucket, or None."""
        for item in self.items:
            if item.khash == khash and item.key == key:
                return item
        return None

    def pack(self, chain_len: int, block_size: int) -> bytes:
        """Serialize to exactly one zero-padded device block."""
        body = b"".join(item.pack() for item in self.items)
        header = BUCKET_HEADER.pack(self.seg_id, chain_len, self.position,
                                    len(self.items), self.head & 0xFFFFFFFF,
                                    self.tail & 0xFFFFFFFF)
        blob = header + body
        if len(blob) > block_size:
            raise ValueError("bucket of %d bytes exceeds block %d"
                             % (len(blob), block_size))
        return blob + b"\x00" * (block_size - len(blob))

    @classmethod
    def unpack(cls, block: bytes) -> "Bucket":
        seg_id, chain_len, position, nkeys, head, tail = BUCKET_HEADER.unpack_from(
            block, 0)
        items: List[KeyItem] = []
        cursor = BUCKET_HEADER.size
        for _ in range(nkeys):
            item = KeyItem.unpack_from(block, cursor)
            cursor += item.wire_size
            items.append(item)
        bucket = cls(seg_id=seg_id, position=position, items=items,
                     head=head, tail=tail)
        bucket._chain_len = chain_len  # type: ignore[attr-defined]
        return bucket


@dataclass
class Segment:
    """A chain of buckets; the unit read/written by one NVMe access."""

    seg_id: int
    buckets: List[Bucket] = field(default_factory=list)

    @property
    def chain_len(self) -> int:
        return len(self.buckets)

    def iter_items(self):
        """Yield every key item across the bucket chain."""
        for bucket in self.buckets:
            for item in bucket.items:
                yield item

    def find(self, key: bytes, khash: Optional[int] = None) -> Optional[KeyItem]:
        """Locate a key's item anywhere in the chain, or None."""
        if khash is None:
            khash = key_hash(key)
        for bucket in self.buckets:
            item = bucket.find(key, khash)
            if item is not None:
                return item
        return None

    def live_items(self) -> List[KeyItem]:
        """Key items that are not deletion markers."""
        return [item for item in self.iter_items() if not item.is_tombstone]

    def upsert(self, item: KeyItem, block_size: int, max_chain: int) -> None:
        """Insert or update ``item``; extends the chain when needed.

        Raises :class:`SegmentFullError` when all ``max_chain`` buckets
        are at capacity and the key is new.
        """
        existing = self.find(item.key, item.khash)
        if existing is not None:
            existing.vlen = item.vlen
            existing.voffset = item.voffset
            existing.ssd_id = item.ssd_id
            return
        for bucket in self.buckets:
            if bucket.has_room(item, block_size):
                bucket.items.append(item)
                return
        if len(self.buckets) >= max_chain:
            raise SegmentFullError(
                "segment %d: %d buckets full (max chain %d)"
                % (self.seg_id, len(self.buckets), max_chain))
        bucket = Bucket(seg_id=self.seg_id, position=len(self.buckets))
        bucket.items.append(item)
        self.buckets.append(bucket)

    def drop_tombstones(self) -> int:
        """Remove deletion markers; returns how many were dropped.

        Called during compaction once a tombstone no longer shadows
        any older on-log value (i.e. the old space is being reclaimed).
        """
        dropped = 0
        for bucket in self.buckets:
            before = len(bucket.items)
            bucket.items[:] = [i for i in bucket.items if not i.is_tombstone]
            dropped += before - len(bucket.items)
        # Shrink the chain when trailing buckets emptied.
        while len(self.buckets) > 1 and not self.buckets[-1].items:
            self.buckets.pop()
        for position, bucket in enumerate(self.buckets):
            bucket.position = position
        return dropped

    def pack(self, block_size: int, head: int = 0, tail: int = 0) -> bytes:
        """Serialize as a contiguous array of block-sized buckets."""
        if not self.buckets:
            self.buckets = [Bucket(seg_id=self.seg_id, position=0)]
        chain = len(self.buckets)
        parts = []
        for position, bucket in enumerate(self.buckets):
            bucket.position = position
            bucket.head = head
            bucket.tail = tail
            parts.append(bucket.pack(chain, block_size))
        return b"".join(parts)

    @classmethod
    def unpack(cls, data: bytes, block_size: int) -> "Segment":
        if len(data) % block_size:
            raise ValueError("segment blob of %d bytes not block-aligned"
                             % len(data))
        buckets = [Bucket.unpack(data[start:start + block_size])
                   for start in range(0, len(data), block_size)]
        if not buckets:
            raise ValueError("empty segment blob")
        return cls(seg_id=buckets[0].seg_id, buckets=buckets)

    def byte_size(self, block_size: int) -> int:
        """On-SSD size of the serialized segment (whole buckets)."""
        return max(len(self.buckets), 1) * block_size


class SegmentFullError(Exception):
    """A segment's chain reached M buckets with no room left."""


def peek_segment_header(block: bytes):
    """Parse just the first bucket header of a serialized segment.

    Returns ``(seg_id, chain_len)`` — what key-log compaction needs to
    identify and size the entry at the log head without deserializing
    everything (§3.3.1).
    """
    seg_id, chain_len, _position, _nkeys, _head, _tail = BUCKET_HEADER.unpack_from(
        block, 0)
    return seg_id, max(chain_len, 1)


def pack_value_entry(seg_id: int, key: bytes, value: bytes,
                     owner_id: int = 0) -> bytes:
    """Serialize one value-log entry.

    ``owner_id`` names the store that owns the key — normally the log's
    own store, but a *swapped* write (§3.6) lands in a peer SSD's value
    log, and the peer's compactor uses the tag to find the owning
    SegTbl for validity checks and merge-back.
    """
    return VALUE_ENTRY_HEADER.pack(owner_id, seg_id, len(key),
                                   len(value)) + key + value


def unpack_value_entry(buffer: bytes, offset: int = 0):
    """Parse one entry; returns (seg_id, key, value, wire_size, owner_id)."""
    owner_id, seg_id, klen, vlen = VALUE_ENTRY_HEADER.unpack_from(buffer, offset)
    start = offset + VALUE_ENTRY_HEADER.size
    key = bytes(buffer[start:start + klen])
    value = bytes(buffer[start + klen:start + klen + vlen])
    return seg_id, key, value, VALUE_ENTRY_HEADER.size + klen + vlen, owner_id


def value_entry_size(klen: int, vlen: int) -> int:
    return VALUE_ENTRY_HEADER.size + klen + vlen
