"""Crash recovery: rebuild a store's DRAM state from its flash logs.

The SegTbl lives in SmartNIC DRAM and dies with a power failure; the
key and value logs are persistent.  Each bucket carries head/tail
snapshot fields "used for recovery" (§3.2.3): the key-log tail at the
moment the segment was appended.  Because the tail is monotonic, the
on-flash entry with the **highest tail snapshot** for a segment id is
that segment's latest version — so a single sequential scan of the
key-log region rebuilds the index without any other metadata.

Recovery steps:

1. scan every block of the key-log region, parsing bucket headers
   (position-0 buckets mark candidate segment entries);
2. keep, per segment id, the candidate with the largest tail
   snapshot whose full chain parses;
3. rebuild the SegTbl from the winners; restore the key log's
   head/tail around the live window; restore each value log tail
   from the largest value offset referenced by a live key item.

The scan costs one sequential read of the key-log region — seconds
for a real partition, exactly the "fast crash recovery" property
log-structured stores advertise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.circular_log import CircularLog
from repro.core.datastore import LeedDataStore
from repro.core.segment import BUCKET_HEADER, Bucket, Segment, value_entry_size


@dataclass
class RecoveryReport:
    """Outcome of one recovery scan."""

    blocks_scanned: int = 0
    segments_recovered: int = 0
    stale_versions_skipped: int = 0
    live_objects: int = 0
    key_log_head: int = 0
    key_log_tail: int = 0
    duration_us: float = 0.0


def recover_store(store: LeedDataStore):
    """Generator: rebuild ``store``'s SegTbl by scanning its key log.

    The store must be freshly constructed over the surviving SSD
    (empty SegTbl, zero log pointers).  Returns a
    :class:`RecoveryReport`.
    """
    sim = store.sim
    started = sim.now
    log = store.key_log
    block = log.block_size
    blocks_total = log.size // block
    report = RecoveryReport()

    # Candidate latest version per segment: seg_id -> (tail_snapshot,
    # physical block index, chain_len).
    candidates: Dict[int, Tuple[int, int, int]] = {}

    # Pass 1: sequential scan of the raw region (big reads amortize
    # the device latency, as a real recovery would).
    blocks: list = []
    chunk_blocks = max((64 * 1024) // block, 1)
    for start in range(0, blocks_total, chunk_blocks):
        count = min(chunk_blocks, blocks_total - start)
        data = yield from store.ssd.read(log.region_offset + start * block,
                                         count * block)
        for index in range(count):
            blocks.append(bytes(data[index * block:(index + 1) * block]))
    report.blocks_scanned = len(blocks)

    for block_index, blob in enumerate(blocks):
        parsed = _parse_bucket_header(blob)
        if parsed is None:
            continue
        seg_id, chain_len, position, tail_snapshot = parsed
        if position != 0 or not (0 < chain_len <= store.config.max_chain):
            continue
        if seg_id >= store.config.num_segments:
            continue
        best = candidates.get(seg_id)
        if best is None or tail_snapshot > best[0]:
            if best is not None:
                report.stale_versions_skipped += 1
            candidates[seg_id] = (tail_snapshot, block_index, chain_len)
        else:
            report.stale_versions_skipped += 1

    # Pass 2: validate each winner's chain and rebuild the SegTbl.
    # Physical block index is also the virtual offset modulo the log
    # size; reconstruct virtual offsets in a single epoch (offsets
    # only need to be internally consistent after recovery).
    max_voffsets: Dict[int, int] = {}
    live_blocks = set()
    for seg_id, (tail_snapshot, block_index, chain_len) in sorted(
            candidates.items()):
        chain = []
        valid = True
        for position in range(chain_len):
            physical = block_index + position
            if physical >= blocks_total:
                physical -= blocks_total  # wrapped segment
            blob = blocks[physical]
            parsed = _parse_bucket_header(blob)
            if parsed is None or parsed[0] != seg_id or parsed[2] != position:
                valid = False
                break
            chain.append(blob)
        if not valid:
            report.stale_versions_skipped += 1
            continue
        segment = Segment.unpack(b"".join(chain), block)
        if not segment.live_items():
            continue
        store.segtbl.update(seg_id, block_index * block, chain_len)
        report.segments_recovered += 1
        for position in range(chain_len):
            live_blocks.add((block_index + position) % blocks_total)
        for item in segment.live_items():
            report.live_objects += 1
            end = item.voffset + value_entry_size(len(item.key), item.vlen)
            holder = item.ssd_id
            max_voffsets[holder] = max(max_voffsets.get(holder, 0), end)

    # Pass 3: restore log pointers.  The live window must cover every
    # recovered offset; anything outside it is garbage the next
    # compaction round will never see (it was already dead).
    if live_blocks:
        tail_block = max(live_blocks) + 1
        head_block = min(live_blocks)
    else:
        tail_block = head_block = 0
    log.head = head_block * block
    log.tail = tail_block * block
    report.key_log_head = log.head
    report.key_log_tail = log.tail
    store.live_objects = report.live_objects

    value_log = store.value_log
    value_log.head = 0
    value_log.tail = max_voffsets.get(store.store_id, 0)

    report.duration_us = sim.now - started
    return report


def _parse_bucket_header(blob: bytes) -> Optional[Tuple[int, int, int, int]]:
    """(seg_id, chain_len, position, tail) or None for garbage."""
    if len(blob) < BUCKET_HEADER.size:
        return None
    try:
        seg_id, chain_len, position, nkeys, _head, tail = \
            BUCKET_HEADER.unpack_from(blob, 0)
    except Exception:  # pragma: no cover - struct never raises here
        return None
    if chain_len == 0 and nkeys == 0 and tail == 0 and seg_id == 0:
        return None  # unwritten block
    # Sanity-parse the items; garbage blocks fail fast.
    try:
        Bucket.unpack(blob)
    except Exception:
        return None
    return seg_id, chain_len, position, tail
