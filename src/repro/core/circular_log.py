"""The circular log — LEED's central on-SSD data structure (§3.2.1).

A fixed-size contiguous region of one SSD.  Head and tail are
*virtual* (monotonically increasing) byte offsets; the physical
position is ``offset % size``.  Three operations:

* ``read`` from a virtual offset within the valid window;
* ``append`` at the tail (whole blocks, or byte-granular through a
  DRAM tail-block staging area for the value log);
* ``advance_head`` — the commit step of compaction, reclaiming space.

The structure exploits NVMe behaviour: random reads anywhere in the
window, strictly sequential writes at the tail, no in-place updates.
"""

from __future__ import annotations

from typing import Dict

from repro.hw.ssd import NVMeSSD
from repro.sim.events import Event


class LogFullError(Exception):
    """An append did not fit between tail and head."""


class LogRangeError(Exception):
    """A read touched bytes outside the valid [head, tail) window."""


class CircularLog:
    """A circular log over a region ``[region_offset, region_offset+size)``.

    Parameters
    ----------
    ssd:
        The backing device (functional + timing).
    region_offset:
        Byte offset of the region on the device; block-aligned.
    size:
        Region size in bytes; a multiple of the device block size.
    name:
        For diagnostics.
    """

    def __init__(self, ssd: NVMeSSD, region_offset: int, size: int,
                 name: str = "log"):
        block = ssd.block_size
        if region_offset % block or size % block:
            raise ValueError("log region must be block-aligned")
        if size <= 0 or region_offset + size > ssd.capacity_bytes:
            raise ValueError("log region [%d,+%d) outside device"
                             % (region_offset, size))
        self.ssd = ssd
        self.sim = ssd.sim
        self.region_offset = region_offset
        self.size = size
        self.block_size = block
        self.name = name
        #: Virtual offsets; head <= tail always, tail - head <= size.
        self.head = 0
        self.tail = 0
        # Byte-granular appends stage into DRAM block images so that
        # concurrent PUTs sharing a tail block cannot lose each other's
        # bytes; a block image is dropped once no writer needs it.
        self._staged: Dict[int, bytearray] = {}
        self._stage_refs: Dict[int, int] = {}
        # Group-commit flush state.  The device applies data at I/O
        # *completion*, and completions reorder under jitter, so two
        # outstanding flushes of one block could land oldest-last and
        # revert the newer writer's bytes.  A single flusher process
        # per log keeps same-block writes ordered; batching (one
        # device write covers every byte merged before it was issued)
        # keeps concurrent writers fast — the append-buffer group
        # commit a real SPDK-driven store performs.
        self._generation = 0
        self._dirty_gen: Dict[int, int] = {}
        self._flushed_gen: Dict[int, int] = {}
        self._flusher_active = False
        self._flush_waiters: list = []
        self.appends = 0
        self.bytes_appended = 0

    # -- geometry ---------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self.tail - self.head

    @property
    def free_bytes(self) -> int:
        return self.size - self.used_bytes

    def fill_fraction(self) -> float:
        """Used fraction of the log region (compaction trigger input)."""
        return self.used_bytes / self.size

    def contains(self, virtual_offset: int, length: int = 1) -> bool:
        """True when ``[offset, offset+length)`` lies in the valid window."""
        return self.head <= virtual_offset and virtual_offset + length <= self.tail

    def _touched_blocks(self, offset: int, length: int):
        first = offset // self.block_size
        last = (offset + max(length, 1) - 1) // self.block_size
        return range(first, last + 1)

    # -- appends -----------------------------------------------------------------

    def reserve(self, nbytes: int) -> int:
        """Claim ``nbytes`` at the tail; returns the entry's virtual offset.

        Reservation is synchronous (a tail-pointer bump) so concurrent
        PUTs each get a distinct offset before their device writes
        complete — this is what lets LEED overlap the key-segment read
        with the value-log write (§3.3).
        """
        if nbytes > self.free_bytes:
            raise LogFullError("%s: need %d bytes, %d free"
                               % (self.name, nbytes, self.free_bytes))
        offset = self.tail
        self.tail += nbytes
        for block in self._touched_blocks(offset, nbytes):
            self._stage_refs[block] = self._stage_refs.get(block, 0) + 1
        return offset

    def append_blocks(self, data: bytes, trace=None):
        """Generator: append whole blocks; returns the virtual offset.

        ``data`` is padded to a block multiple.  Wrap-around is split
        into at most two device writes.  When the tail is
        block-aligned the new blocks are exclusively owned, so the
        write bypasses the staging/group-commit path and runs in
        parallel with other appends.
        """
        padded = self._pad_to_block(data)
        if self.tail % self.block_size == 0:
            if len(padded) > self.free_bytes:
                raise LogFullError("%s: need %d bytes, %d free"
                                   % (self.name, len(padded), self.free_bytes))
            offset = self.tail
            self.tail += len(padded)
            yield from self._write_at(offset, padded, trace)
            self.appends += 1
            self.bytes_appended += len(padded)
            return offset
        offset = self.reserve(len(padded))
        yield from self.write_reserved(offset, padded, trace)
        return offset

    def append_bytes(self, data: bytes, trace=None):
        """Generator: byte-granular append.

        Only the device blocks touched by this entry are (re)written —
        one block write for small entries, matching one NVMe access
        per PUT value (§3.3).  Returns the virtual offset.
        """
        offset = self.reserve(len(data))
        yield from self.write_reserved(offset, data, trace)
        return offset

    def write_reserved(self, offset: int, data: bytes, trace=None):
        """Generator: fill a range previously claimed with :meth:`reserve`.

        The data is merged into DRAM block images synchronously, then
        the touched blocks are flushed to the device, so interleaved
        writers sharing a block never lose updates.  ``trace`` records
        a ``log.commit`` device-phase span over the group-commit wait
        (the flusher's device write is shared across writers, so this
        span is the per-request attribution of commit time).
        """
        if offset + len(data) > self.tail:
            raise LogRangeError("writing past tail of %s" % self.name)
        ctx = None
        if trace is not None:
            ctx = trace.child("log.commit", cat="device",
                              args={"log": self.name, "bytes": len(data)})
        blocks = list(self._touched_blocks(offset, len(data)))
        # Synchronous merge into staged block images.  A block staged
        # for the first time starts from its on-flash content, not
        # zeros: after crash recovery the partially-filled tail block
        # already holds live bytes that a flush must not clobber (a
        # real store reloads its append buffer the same way).
        for block in blocks:
            image = self._staged.get(block)
            if image is None:
                physical = self.region_offset + (block * self.block_size
                                                 % self.size)
                image = bytearray(self.ssd.flash.read(physical,
                                                      self.block_size))
                self._staged[block] = image
            block_start = block * self.block_size
            lo = max(offset, block_start)
            hi = min(offset + len(data), block_start + self.block_size)
            image[lo - block_start:hi - block_start] = data[lo - offset:hi - offset]
        # Group commit: mark the touched blocks dirty and wait until
        # the flusher has made this writer's generation durable.
        self._generation += 1
        generation = self._generation
        for block in blocks:
            self._dirty_gen[block] = generation
        if not self._flusher_active:
            self._flusher_active = True
            self.sim.process(self._flush_loop(), name=self.name + ".flush")
        while any(self._flushed_gen.get(block, 0) < generation
                  for block in blocks):
            waiter = Event(self.sim)
            self._flush_waiters.append(waiter)
            yield waiter
        # Release staging references; keep images other writers still need
        # and the current tail block (future appends extend it).
        tail_block = self.tail // self.block_size
        for block in blocks:
            self._stage_refs[block] -= 1
            if self._stage_refs[block] <= 0:
                del self._stage_refs[block]
                if block != tail_block:
                    self._staged.pop(block, None)
                    self._dirty_gen.pop(block, None)
                    self._flushed_gen.pop(block, None)
        if ctx is not None:
            ctx.finish()
        self.appends += 1
        self.bytes_appended += len(data)
        return offset

    def _next_dirty_run(self):
        """The lowest contiguous run of blocks still awaiting a flush."""
        dirty = sorted(block for block, generation in self._dirty_gen.items()
                       if self._flushed_gen.get(block, 0) < generation)
        if not dirty:
            return None
        low = high = dirty[0]
        for block in dirty[1:]:
            if block != high + 1:
                break
            high = block
        return low, high

    def _flush_loop(self):
        """Flusher process: one in-flight device write at a time.

        Each iteration snapshots the current images of the lowest
        dirty run — so the write carries every byte merged before it
        was issued — and records the generations it captured once the
        write completes.  Writers whose generation is covered resume;
        bytes merged while the write was in flight stay dirty and are
        picked up by the next iteration.
        """
        try:
            while True:
                run = self._next_dirty_run()
                if run is None:
                    break
                low, high = run
                captured = {block: self._dirty_gen[block]
                            for block in range(low, high + 1)}
                data = b"".join(bytes(self._staged[block])
                                for block in range(low, high + 1))
                yield from self._write_at(low * self.block_size, data)
                for block, generation in captured.items():
                    if self._flushed_gen.get(block, 0) < generation:
                        self._flushed_gen[block] = generation
                waiters, self._flush_waiters = self._flush_waiters, []
                for waiter in waiters:
                    waiter.succeed()
        finally:
            self._flusher_active = False

    def _pad_to_block(self, data: bytes) -> bytes:
        remainder = len(data) % self.block_size
        if remainder:
            return bytes(data) + b"\x00" * (self.block_size - remainder)
        return bytes(data)

    def _write_at(self, virtual_offset: int, data: bytes, trace=None):
        """Device write(s) with wrap-around splitting."""
        start_physical = virtual_offset % self.size
        first_len = min(len(data), self.size - start_physical)
        yield from self.ssd.write(self.region_offset + start_physical,
                                  data[:first_len], trace=trace)
        if first_len < len(data):
            yield from self.ssd.write(self.region_offset, data[first_len:],
                                      trace=trace)

    # -- reads --------------------------------------------------------------------

    def read(self, virtual_offset: int, length: int, trace=None):
        """Generator: read ``length`` bytes at a virtual offset.

        Bytes still staged in DRAM (tail block not yet flushed by a
        concurrent writer) are served from the staged image, exactly as
        a real store would serve them from its append buffer.
        """
        if not self.contains(virtual_offset, length):
            raise LogRangeError(
                "%s: read [%d,+%d) outside window [%d,%d)"
                % (self.name, virtual_offset, length, self.head, self.tail))
        start_physical = virtual_offset % self.size
        first_len = min(length, self.size - start_physical)
        data = yield from self.ssd.read(self.region_offset + start_physical,
                                        first_len, trace=trace)
        if first_len < length:
            rest = yield from self.ssd.read(self.region_offset,
                                            length - first_len, trace=trace)
            data += rest
        # Overlay staged bytes for blocks that are still in DRAM.
        if self._staged:
            data = self._overlay_staged(virtual_offset, bytearray(data))
        return data

    def read_at(self, virtual_offset: int, length: int, at: float):
        """Analytic read (fast datapath): returns ``(data, done_us)``.

        Synchronous variant of :meth:`read` for fused server paths:
        same validation, wrap splitting and staged-byte overlay, but
        the device model is charged starting at ``at`` and the
        completion time is returned instead of yielded on.
        """
        if not self.contains(virtual_offset, length):
            raise LogRangeError(
                "%s: read [%d,+%d) outside window [%d,%d)"
                % (self.name, virtual_offset, length, self.head, self.tail))
        start_physical = virtual_offset % self.size
        first_len = min(length, self.size - start_physical)
        data, done = self.ssd.read_at(self.region_offset + start_physical,
                                      first_len, at)
        if first_len < length:
            rest, rest_done = self.ssd.read_at(self.region_offset,
                                               length - first_len, at)
            data += rest
            done = max(done, rest_done)
        if self._staged:
            data = self._overlay_staged(virtual_offset, bytearray(data))
        return data, done

    def charge_read_at(self, virtual_offset: int, length: int,
                       at: float) -> float:
        """:meth:`read_at` timing without fetching the bytes.

        For callers that hold the decoded content cached: the device
        model is charged exactly as for a real read (the simulated SSD
        has no read cache), only the copy out is skipped.
        """
        if not self.contains(virtual_offset, length):
            raise LogRangeError(
                "%s: read [%d,+%d) outside window [%d,%d)"
                % (self.name, virtual_offset, length, self.head, self.tail))
        start_physical = virtual_offset % self.size
        first_len = min(length, self.size - start_physical)
        done = self.ssd.charge_read_at(first_len, at)
        if first_len < length:
            done = max(done, self.ssd.charge_read_at(length - first_len, at))
        return done

    def read_multi(self, extents, trace=None):
        """Generator: vectored read of ``[(virtual_offset, length), ...]``.

        Every extent is validated against the window up front (so a
        racing compaction raises :class:`LogRangeError` before any
        device work), mapped to physical ranges with wrap-around
        splitting, and submitted through one
        :meth:`~repro.hw.ssd.NVMeSSD.read_multi` doorbell.  Staged DRAM
        bytes are overlaid per extent.  Returns the byte strings in
        input order.
        """
        extents = list(extents)
        for virtual_offset, length in extents:
            if not self.contains(virtual_offset, length):
                raise LogRangeError(
                    "%s: read [%d,+%d) outside window [%d,%d)"
                    % (self.name, virtual_offset, length, self.head, self.tail))
        physical = []
        parts = []  # per extent: indices into ``physical``
        for virtual_offset, length in extents:
            start_physical = virtual_offset % self.size
            first_len = min(length, self.size - start_physical)
            indices = [len(physical)]
            physical.append((self.region_offset + start_physical, first_len))
            if first_len < length:
                indices.append(len(physical))
                physical.append((self.region_offset, length - first_len))
            parts.append(indices)
        blobs = yield from self.ssd.read_multi(physical, trace=trace)
        results = []
        for (virtual_offset, length), indices in zip(extents, parts):
            data = blobs[indices[0]]
            if len(indices) > 1:
                data = data + blobs[indices[1]]
            if self._staged:
                data = self._overlay_staged(virtual_offset, bytearray(data))
            results.append(data)
        return results

    def _overlay_staged(self, offset: int, data: bytearray) -> bytes:
        for block in self._touched_blocks(offset, len(data)):
            image = self._staged.get(block)
            if image is None:
                continue
            block_start = block * self.block_size
            lo = max(offset, block_start)
            hi = min(offset + len(data), block_start + self.block_size)
            data[lo - offset:hi - offset] = image[lo - block_start:hi - block_start]
        return bytes(data)

    # -- reclamation ------------------------------------------------------------------

    def advance_head(self, new_head: int) -> None:
        """Move the head forward, reclaiming ``new_head - head`` bytes."""
        if not self.head <= new_head <= self.tail:
            raise LogRangeError("%s: head %d -> %d outside [%d,%d]"
                                % (self.name, self.head, new_head,
                                   self.head, self.tail))
        self.head = new_head

    def __repr__(self):
        return "<CircularLog %s head=%d tail=%d free=%d/%d>" % (
            self.name, self.head, self.tail, self.free_bytes, self.size)
