"""Inter-JBOF scheduler based on end-to-end flow control (§3.5, Alg. 1).

The front-end keeps, per target partition, its latest view of that
partition's token allocation (piggybacked on every response) and the
number of outstanding commands.  A scheduling round walks the active
tenants round-robin and submits a tenant's next request only when

* the target offers enough tokens (Alg. 1 L5-7), or
* there are no outstanding commands to that target (L9-13) — the
  Nagle-style probe that keeps the pipe from deadlocking when the
  client's token view went stale.

Token views are updated on every successful submit (spend) and on
every response (piggybacked allocation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.obs.hist import LatencyHistogram
from repro.sim.core import Simulator
from repro.sim.events import Event


@dataclass
class TargetView:
    """Client-side view of one target partition's serving capability."""

    tokens: int = 4          # optimistic initial allowance
    outstanding: int = 0
    last_update_us: float = 0.0


@dataclass
class PendingRequest:
    """One request waiting in a tenant's front-end queue."""

    target: str
    token_cost: int
    send: Callable[[], None]
    enqueued_at: float = 0.0


@dataclass
class FlowStats:
    """Cumulative flow-controller statistics."""

    submitted: int = 0
    deferred: int = 0
    nagle_probes: int = 0
    rounds: int = 0
    #: Time requests spend in the front-end tenant queues before the
    #: scheduler clears them (zero when flow control is disabled).
    queue_wait: LatencyHistogram = field(default_factory=LatencyHistogram)


class FlowController:
    """Client-side load-aware scheduler (one per front-end library).

    Users enqueue requests with :meth:`enqueue`; the ``send`` callback
    fires when the scheduler clears the request for submission.  Call
    :meth:`on_response` whenever a response carrying a piggybacked
    token allocation arrives, and :meth:`on_complete` when a request
    retires.

    With ``enabled=False`` every request is submitted immediately —
    the ablation baseline of Fig. 8.
    """

    def __init__(self, sim: Simulator, enabled: bool = True,
                 name: str = "flowctl"):
        self.sim = sim
        self.enabled = enabled
        self.name = name
        self.targets: Dict[str, TargetView] = {}
        self._tenant_queues: Dict[str, Deque[PendingRequest]] = {}
        self._tenant_order: List[str] = []
        self._rr_index = 0
        self.stats = FlowStats()
        self._kick = Event(sim)
        #: Fast path (``fast_datapath``): run scheduling rounds
        #: synchronously from :meth:`_wake` instead of kicking the
        #: scheduler process — saves one event per wake at the cost of
        #: running the round inside the caller's stack frame.
        self.inline_rounds = False
        self._in_round = False
        self._queued_count = 0
        self._runner = sim.process(self._run(), name=name + ".sched")

    # -- target state ------------------------------------------------------------

    def view(self, target: str) -> TargetView:
        """This client's (possibly stale) view of one partition."""
        if target not in self.targets:
            self.targets[target] = TargetView(last_update_us=self.sim.now)
        return self.targets[target]

    def on_response(self, target: str, allocated_tokens: int) -> None:
        """Fold a piggybacked allocation into the local view."""
        view = self.view(target)
        view.tokens = max(allocated_tokens, 0)
        view.last_update_us = self.sim.now
        self._wake()

    def on_complete(self, target: str) -> None:
        """A request to ``target`` retired."""
        view = self.view(target)
        view.outstanding = max(view.outstanding - 1, 0)
        self._wake()

    def best_target(self, candidates: List[str]) -> str:
        """The candidate with the most available tokens (CRRS replica
        choice, §3.7)."""
        return max(candidates, key=lambda t: self.view(t).tokens)

    # -- request intake --------------------------------------------------------------

    def enqueue(self, tenant: str, request: PendingRequest) -> None:
        """Queue ``request`` for scheduling on behalf of ``tenant``."""
        request.enqueued_at = self.sim.now
        if not self.enabled:
            self._submit(request)
            return
        if tenant not in self._tenant_queues:
            self._tenant_queues[tenant] = deque()
            self._tenant_order.append(tenant)
        self._tenant_queues[tenant].append(request)
        self._queued_count += 1
        self._wake()

    def queued(self) -> int:
        """Requests still waiting in the front-end tenant queues."""
        return sum(len(q) for q in self._tenant_queues.values())

    # -- scheduling loop (Algorithm 1) -------------------------------------------------

    def _wake(self) -> None:
        if self.inline_rounds:
            # Nothing queued -> nothing a round could submit.  (Inline
            # mode only: the event-driven scheduler keeps its exact
            # kick-per-wake schedule.)
            if self.enabled and not self._in_round and self._queued_count:
                self._in_round = True
                try:
                    self._schedule_round()
                finally:
                    self._in_round = False
            return
        if not self._kick.triggered:
            self._kick.succeed()

    def _run(self):
        while True:
            yield self._kick
            self._kick = Event(self.sim)
            if not self.enabled:
                continue
            self._schedule_round()

    def _schedule_round(self) -> None:
        self.stats.rounds += 1
        progressed = True
        while progressed:
            progressed = False
            for _ in range(len(self._tenant_order)):
                tenant = self._tenant_order[self._rr_index % max(
                    len(self._tenant_order), 1)]
                self._rr_index += 1
                queue = self._tenant_queues.get(tenant)
                if not queue:
                    continue
                request = queue[0]
                view = self.view(request.target)
                if request.token_cost <= view.tokens:          # Alg.1 L5-7
                    queue.popleft()
                    self._queued_count -= 1
                    view.tokens -= request.token_cost
                    self._submit(request)
                    progressed = True
                elif view.outstanding < 1:                      # Alg.1 L9-13
                    queue.popleft()
                    self._queued_count -= 1
                    view.tokens = 0
                    self.stats.nagle_probes += 1
                    self._submit(request)
                    progressed = True
                else:
                    self.stats.deferred += 1

    def _submit(self, request: PendingRequest) -> None:
        view = self.view(request.target)
        view.outstanding += 1
        self.stats.submitted += 1
        self.stats.queue_wait.record(self.sim.now - request.enqueued_at)
        request.send()

    def __repr__(self):
        return "<FlowController %s queued=%d targets=%d>" % (
            self.name, self.queued(), len(self.targets))
