"""Simulated network: fabric, RDMA verbs, and RPC."""

from repro.net.rdma import MemoryRegion, QueuePair, SendCompletion, WriteCompletion
from repro.net.rpc import (
    ENVELOPE_BYTES,
    OneWay,
    RpcEndpoint,
    RpcError,
    RpcRequest,
    RpcResponse,
    RpcTimeout,
)
from repro.net.topology import (
    NIC_1G,
    NIC_1G_USB,
    NIC_100G,
    Network,
    Nic,
    NicProfile,
    SwitchProfile,
)

__all__ = [
    "Network",
    "Nic",
    "NicProfile",
    "SwitchProfile",
    "NIC_100G",
    "NIC_1G",
    "NIC_1G_USB",
    "QueuePair",
    "MemoryRegion",
    "SendCompletion",
    "WriteCompletion",
    "RpcEndpoint",
    "RpcError",
    "RpcTimeout",
    "RpcRequest",
    "RpcResponse",
    "OneWay",
    "ENVELOPE_BYTES",
]
