"""RDMA-style verbs over the simulated fabric.

LEED's cross-node communication (§3.5) uses a hybrid of verbs:

* the **sender** passes commands with two-sided ``SEND`` (consumes a
  receive work request at the target, surfaces on its recv CQ);
* the **receiver** answers with one-sided ``WRITE`` carrying a 32-bit
  immediate, landing directly in a pre-allocated response buffer at
  the requester and signalling the requester's CQ with the IMM —
  which identifies the request without extra messages.

We keep the verb distinction explicit (different completion paths,
different per-verb counters) so that the memory-management asymmetry
the paper exploits is visible and testable, even though both verbs
ride the same simulated fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.net.topology import Network
from repro.sim.core import Simulator
from repro.sim.queues import Store

#: Wire overhead per message: Ethernet + IP + UDP + RoCE BTH headers.
WIRE_OVERHEAD_BYTES = 58


@dataclass
class SendCompletion:
    """Two-sided SEND arrival at the responder."""

    src: str
    payload: Any
    nbytes: int


@dataclass
class WriteCompletion:
    """One-sided WRITE-with-IMM arrival at the requester."""

    src: str
    imm: int
    payload: Any
    nbytes: int


@dataclass
class MemoryRegion:
    """A registered buffer that remote WRITEs may target."""

    key: int
    size: int
    data: Any = None


class QueuePair:
    """One endpoint's RDMA context: send/recv queues plus verb stats.

    A single QP object per node suffices for this simulation — the
    fabric below already serializes per-port, which is the resource a
    real RC QP would contend on.
    """

    def __init__(self, sim: Simulator, network: Network, address: str):
        self.sim = sim
        self.network = network
        self.address = address
        #: Completion queue for inbound two-sided SENDs.
        self.recv_cq: Store = Store(sim, name="recv_cq@" + address)
        #: Completion queue for inbound one-sided WRITE IMMs.
        self.write_cq: Store = Store(sim, name="write_cq@" + address)
        self._regions: Dict[int, MemoryRegion] = {}
        self._next_key = 1
        self.sends_posted = 0
        self.writes_posted = 0
        self._pump_started = False
        #: Optional synchronous completion sinks (fast datapath): when
        #: set, deliveries bypass the CQ Stores entirely and the sink
        #: is invoked at routing time with the completion record.
        self.recv_handler = None
        self.write_handler = None
        self.nic = network.nic(address)
        sim.process(self._pump(), name="qp-pump@" + address)

    # -- memory registration -----------------------------------------------------

    def register_region(self, size: int) -> MemoryRegion:
        """Register a response buffer; returns its rkey handle."""
        region = MemoryRegion(key=self._next_key, size=size)
        self._next_key += 1
        self._regions[region.key] = region
        return region

    def deregister_region(self, key: int) -> None:
        self._regions.pop(key, None)

    def region(self, key: int) -> MemoryRegion:
        return self._regions[key]

    # -- verbs ----------------------------------------------------------------------

    def post_send(self, dst: str, payload: Any, nbytes: int) -> None:
        """Two-sided SEND: payload pops on the destination's recv CQ."""
        self.sends_posted += 1
        wire = nbytes + WIRE_OVERHEAD_BYTES
        self.network.transmit(self.address, dst,
                              wire, ("SEND", self.address, payload, nbytes))

    def post_write_imm(self, dst: str, rkey: int, payload: Any,
                       nbytes: int, imm: int) -> None:
        """One-sided WRITE with immediate into the remote region ``rkey``."""
        self.writes_posted += 1
        wire = nbytes + WIRE_OVERHEAD_BYTES
        self.network.transmit(self.address, dst,
                              wire, ("WRITE_IMM", self.address, rkey, payload,
                                     nbytes, imm))

    # -- delivery pump -----------------------------------------------------------------

    def _route(self, message) -> None:
        """Dispatch one fabric delivery to the appropriate CQ."""
        kind = message[0]
        if kind == "SEND":
            _, src, payload, nbytes = message
            completion = SendCompletion(src, payload, nbytes)
            if self.recv_handler is not None:
                self.recv_handler(completion)
            else:
                self.recv_cq.try_put(completion)
        elif kind == "WRITE_IMM":
            _, src, rkey, payload, nbytes, imm = message
            region = self._regions.get(rkey)
            if region is None:
                # Remote wrote to a deregistered buffer: a protection
                # fault on real hardware; drop here.
                return
            region.data = payload
            completion = WriteCompletion(src, imm, payload, nbytes)
            if self.write_handler is not None:
                self.write_handler(completion)
            else:
                self.write_cq.try_put(completion)
        else:  # pragma: no cover - future verb kinds
            raise ValueError("unknown verb %r" % (kind,))

    def _pump(self):
        while True:
            message = yield self.nic.rx_queue.get()
            self._route(message)

    def enable_fast_rx(self) -> None:
        """Route fabric deliveries to the CQs without the rx-queue hop.

        Installs :meth:`_route` as the NIC's delivery callback, saving
        one scheduled event per inbound message.  Part of the
        ``fast_datapath`` knob; CQ semantics are unchanged.
        """
        self.nic.rx_handler = self._route

    def __repr__(self):
        return "<QueuePair %s sends=%d writes=%d>" % (
            self.address, self.sends_posted, self.writes_posted)
