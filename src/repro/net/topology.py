"""Network fabric: NICs, links, and a ToR switch.

Models the testbed of §4.1 — hosts on a 100 Gbps Arista ToR switch —
at the level LEED's mechanisms care about: per-port serialization
delay (bandwidth), a fixed per-hop latency, and in-order delivery per
(src, dst) pair.  The embedded FAWN nodes attach via a 1 GbE profile
with USB2-stack latency.

Messages are opaque payloads with a byte size; the fabric charges
transmit serialization at the sender port, a switch hop, and receive
serialization at the receiver port, then enqueues the payload on the
receiving NIC's rx queue.

Delivery time is computed entirely from *sender-local* state (port
pacer, profiles, a per-destination in-order clamp), so a message is
fully described at transmit time by a plain record::

    (deliver_at, dst, src, seq, wire_bytes, payload)

Records flow through a per-shard :class:`DeliveryPump` — a canonical
inbox heap drained by :data:`~repro.sim.core.DELIVERY_PRIORITY` events.
In the default single-shard configuration every message goes through
the one pump; when :meth:`Network.configure_shards` partitions the
fabric, records whose destination lives on another shard are captured
on :attr:`Network.boundary` for the parallel engine
(:mod:`repro.sim.parallel`) to exchange at window barriers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.core import Simulator
from repro.sim.queues import Store

#: An in-flight message: ``(deliver_at, dst, src, seq, wire_bytes,
#: payload)``.  The first four fields form a globally unique sort key
#: (``seq`` is the sender NIC's message counter), so sorting a batch of
#: records is deterministic and never compares payloads.
MessageRecord = Tuple[float, str, str, int, int, Any]


@dataclass(frozen=True)
class NicProfile:
    """Timing parameters for one NIC class."""

    name: str = "100gbe-rdma"
    #: Bandwidth in bytes per microsecond (100 Gb/s = 12 500 B/µs).
    bandwidth_bpus: float = 12500.0
    #: One-way fixed latency: NIC processing + cable, microseconds.
    base_latency_us: float = 1.0
    #: Maximum transmission unit; larger messages are segmented.
    mtu_bytes: int = 4096


#: Profiles for the three testbed NICs.
NIC_100G = NicProfile("100gbe-rdma", bandwidth_bpus=12500.0, base_latency_us=1.0)
NIC_1G_USB = NicProfile("1gbe-usb2", bandwidth_bpus=37.5, base_latency_us=40.0,
                        mtu_bytes=1500)
NIC_1G = NicProfile("1gbe", bandwidth_bpus=125.0, base_latency_us=15.0,
                    mtu_bytes=1500)


@dataclass(frozen=True)
class SwitchProfile:
    """A cut-through ToR switch."""

    name: str = "arista-7160"
    hop_latency_us: float = 0.5


class Nic:
    """One network port: paced transmit, FIFO receive queue."""

    def __init__(self, sim: Simulator, address: str,
                 profile: Optional[NicProfile] = None):
        self.sim = sim
        self.address = address
        self.profile = profile or NIC_100G
        self.rx_queue: Store = Store(sim, name="rx@" + address)
        #: Fast-path delivery callback (``QueuePair.enable_fast_rx``):
        #: when set, the fabric hands arriving payloads straight to it
        #: instead of the rx queue, saving the dequeue event.
        self.rx_handler = None
        self._tx_free_at = 0.0
        #: Last granted delivery time per destination (in-order clamp).
        self._pair_last: Dict[str, float] = {}
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_messages = 0
        self.rx_messages = 0

    def serialize_tx(self, nbytes: int) -> float:
        """Reserve transmit time for ``nbytes``; returns completion time."""
        duration = nbytes / self.profile.bandwidth_bpus
        start = max(self.sim.now, self._tx_free_at)
        self._tx_free_at = start + duration
        self.tx_bytes += nbytes
        self.tx_messages += 1
        return self._tx_free_at

    def tx_idle(self) -> bool:
        """True when the transmit port has no serialization backlog."""
        return self._tx_free_at <= self.sim.now

    def order_delivery(self, dst: str, deliver_at: float) -> float:
        """Clamp ``deliver_at`` so (src, dst) delivery stays in order.

        Needed for mixed profiles (a small message can out-serialize a
        large predecessor at a slow receiver port); the clamp only ever
        *delays* a delivery, so it preserves every lower bound used by
        the parallel engine's lookahead.
        """
        last = self._pair_last.get(dst)
        if last is not None and deliver_at < last:
            deliver_at = last
        self._pair_last[dst] = deliver_at
        return deliver_at

    def __repr__(self):
        return "<Nic %s %s tx=%d rx=%d>" % (
            self.address, self.profile.name, self.tx_messages, self.rx_messages)


class DeliveryPump:
    """Per-shard delivery queue draining in canonical order.

    Every delivery on a shard — locally transmitted or injected at a
    window barrier — flows through one inbox heap keyed by the
    :data:`MessageRecord` sort key.  A single outstanding drain event
    (at :data:`~repro.sim.core.DELIVERY_PRIORITY`) pops all records due
    at its timestamp, so the dispatch suffix is a pure function of the
    inbox contents: identical record sequences produce identical
    schedules no matter which process inserted them.
    """

    def __init__(self, sim: Simulator, network: "Network"):
        self.sim = sim
        self.network = network
        self._inbox: List[MessageRecord] = []
        #: Times of the currently scheduled drain events, earliest first.
        self._drains: List[float] = []

    def insert(self, record: MessageRecord) -> None:
        """Queue one record; (re)schedule the drain if it is now due first."""
        when = record[0]
        if when < self.sim.now:
            raise ValueError(
                "delivery at %r is in this shard's past (now=%r)"
                % (when, self.sim.now))
        heapq.heappush(self._inbox, record)
        head = self._inbox[0][0]
        if not self._drains or head < self._drains[0]:
            heapq.heappush(self._drains, head)
            self.sim.schedule_delivery(head - self.sim.now, self._drain)

    def _drain(self) -> None:
        heapq.heappop(self._drains)
        now = self.sim.now
        inbox = self._inbox
        deliver = self.network.deliver
        # <= rather than ==: the drain fires at now + (deliver_at - now),
        # which can round a few ulps past deliver_at.
        while inbox and inbox[0][0] <= now:
            deliver(heapq.heappop(inbox))
        if inbox and (not self._drains or inbox[0][0] < self._drains[0]):
            head = inbox[0][0]
            heapq.heappush(self._drains, head)
            self.sim.schedule_delivery(max(head - now, 0.0), self._drain)

    def __repr__(self):
        return "<DeliveryPump pending=%d>" % len(self._inbox)


class Network:
    """A single-switch fabric connecting named NICs."""

    def __init__(self, sim: Simulator, switch: Optional[SwitchProfile] = None):
        self.sim = sim
        self.switch = switch or SwitchProfile()
        self._nics: Dict[str, Nic] = {}
        self.messages_delivered = 0
        #: When set, drops all traffic to/from these addresses (failure tests).
        self._partitioned: set = set()
        #: Shard id per address; unlisted addresses live on shard 0.
        self._shard_of: Dict[str, int] = {}
        self._sims: Dict[int, Simulator] = {0: sim}
        self._pumps: Dict[int, DeliveryPump] = {0: DeliveryPump(sim, self)}
        #: Records destined for a different shard than their sender,
        #: in transmit order.  The parallel engine collects these at
        #: every window barrier (:meth:`take_boundary`).
        self.boundary: List[MessageRecord] = []
        #: Bumped whenever the NIC set or the shard map changes; the
        #: lookahead matrix below (and the parallel engine's copy of it)
        #: is cached against this counter.
        self._topology_version = 0
        self._lookahead_version: Optional[int] = None
        self._lookahead_matrix: Dict[Tuple[int, int], float] = {}
        self._lookahead_tx: Dict[int, float] = {}
        self._lookahead_rx: Dict[int, float] = {}

    def attach(self, address: str, profile: Optional[NicProfile] = None,
               sim: Optional[Simulator] = None) -> Nic:
        """Create and register a NIC under ``address``.

        ``sim`` binds the NIC (pacer clock, rx queue) to the owning
        component's shard simulator; it defaults to the fabric's own.
        """
        if address in self._nics:
            raise ValueError("address %r already attached" % address)
        nic = Nic(sim or self.sim, address, profile)
        self._nics[address] = nic
        self._topology_version += 1
        return nic

    @property
    def topology_version(self) -> int:
        """Counter tracking NIC attachments and shard-map changes."""
        return self._topology_version

    # -- sharding ----------------------------------------------------------------

    def configure_shards(self, shard_of: Dict[str, int],
                         sims: Dict[int, Simulator]) -> None:
        """Partition the fabric for windowed parallel execution.

        ``shard_of`` maps each address to a shard id (unlisted addresses
        default to shard 0); ``sims`` provides the simulator that steps
        each shard.  One :class:`DeliveryPump` is created per shard.
        """
        self._shard_of = dict(shard_of)
        self._sims = dict(sims)
        self._pumps = {sid: DeliveryPump(sim, self)
                       for sid, sim in self._sims.items()}
        self._topology_version += 1

    def shard_of(self, address: str) -> int:
        """Shard id owning ``address`` (0 unless configured otherwise)."""
        return self._shard_of.get(address, 0)

    def take_boundary(self) -> List[MessageRecord]:
        """Drain and return the captured cross-shard records."""
        records, self.boundary = self.boundary, []
        return records

    def inject(self, record: MessageRecord) -> None:
        """Hand a (possibly remote-born) record to its destination pump."""
        self._pumps[self._shard_of.get(record[1], 0)].insert(record)

    def cross_shard_lookahead(self) -> Dict[Tuple[int, int], float]:
        """Per-shard-pair lookahead matrix ``L[(src, dst)]``.

        ``L[(s, d)]`` is the smallest possible delivery delay of any
        message sent from a NIC on shard ``s`` to a NIC on shard ``d``:
        one byte of transmit serialization plus the sender's base
        latency (minimized over ``s``'s NICs), the switch hop, and one
        byte of receive serialization (minimized over ``d``'s NICs).
        :meth:`transmit` can only add to each term (pacer backlog, real
        sizes, the in-order clamp), so ``neighbor_horizon + L[(s, d)]``
        is a safe window end for shard ``d`` in the conservative
        parallel engine.  Because every entry has the separable form
        ``a_src + hop + b_dst``, the matrix obeys the triangle
        inequality — a relayed influence can never undercut the direct
        bound.

        The matrix is cached per :attr:`topology_version` (attaching a
        NIC or re-sharding invalidates it) so callers can hit it every
        window without an O(NICs²) rescan.  Callers must not mutate the
        returned dict.
        """
        if self._lookahead_version != self._topology_version:
            tx_min: Dict[int, float] = {}
            rx_min: Dict[int, float] = {}
            inf = float("inf")
            for address, nic in self._nics.items():
                shard = self._shard_of.get(address, 0)
                tx = (1.0 / nic.profile.bandwidth_bpus
                      + nic.profile.base_latency_us)
                rx = 1.0 / nic.profile.bandwidth_bpus
                if tx < tx_min.get(shard, inf):
                    tx_min[shard] = tx
                if rx < rx_min.get(shard, inf):
                    rx_min[shard] = rx
            hop = self.switch.hop_latency_us
            self._lookahead_tx = {shard: tx + hop
                                  for shard, tx in tx_min.items()}
            self._lookahead_rx = rx_min
            self._lookahead_matrix = {
                (src, dst): (tx_min[src] + hop) + rx_min[dst]
                for src in tx_min for dst in rx_min if src != dst}
            self._lookahead_version = self._topology_version
        return self._lookahead_matrix

    def cross_shard_lookahead_parts(self) -> Tuple[Dict[int, float],
                                                   Dict[int, float]]:
        """The separable halves of :meth:`cross_shard_lookahead`.

        Returns ``(tx, rx)`` per-shard dicts with
        ``L[(s, d)] == tx[s] + rx[d]`` (``tx`` folds in the switch
        hop).  The separable form is what lets the parallel engine
        compute chain-safe earliest-input times in O(shards) per
        window instead of relaxing the full pair matrix.  Cached with
        the matrix; callers must not mutate the returned dicts.
        """
        self.cross_shard_lookahead()
        return self._lookahead_tx, self._lookahead_rx

    def min_cross_shard_delay_us(self) -> float:
        """Smallest entry of :meth:`cross_shard_lookahead`.

        The single conservative window size used before per-pair
        lookahead existed; kept as the cheap scalar summary.  Returns
        +inf when no NIC pair crosses a shard boundary.
        """
        matrix = self.cross_shard_lookahead()
        return min(matrix.values()) if matrix else float("inf")

    def nic(self, address: str) -> Nic:
        return self._nics[address]

    def addresses(self):
        return list(self._nics)

    # -- failure injection -------------------------------------------------------

    def partition(self, address: str) -> None:
        """Silently drop all traffic involving ``address``."""
        self._partitioned.add(address)

    def heal(self, address: str) -> None:
        self._partitioned.discard(address)

    def is_partitioned(self, address: str) -> bool:
        return address in self._partitioned

    # -- transmission --------------------------------------------------------------

    def transmit(self, src: str, dst: str, nbytes: int, payload: Any) -> None:
        """Send ``payload`` of ``nbytes`` from ``src`` to ``dst``.

        Fire-and-forget: the payload appears on the destination NIC's
        rx queue after serialization + switch + propagation delays.
        Delivery is in order per (src, dst): the sender pacer is FIFO
        and :meth:`Nic.order_delivery` clamps the receive-side term.

        Only *sender-local* state is read or written, so a transmit can
        run on the sender's shard alone; a destination partition is
        checked at delivery time (a sender cannot observe a remote
        failure before its message crosses the fabric).
        """
        if src not in self._nics or dst not in self._nics:
            raise KeyError("unknown endpoint in %r -> %r" % (src, dst))
        if src in self._partitioned:
            return  # dropped silently, like a dead cable
        sender = self._nics[src]
        receiver = self._nics[dst]
        wire = max(nbytes, 1)
        tx_done = sender.serialize_tx(wire)
        deliver_at = sender.order_delivery(
            dst, tx_done + sender.profile.base_latency_us
            + self.switch.hop_latency_us
            + wire / receiver.profile.bandwidth_bpus)
        record = (deliver_at, dst, src, sender.tx_messages, wire, payload)
        shard = self._shard_of.get(src, 0)
        if self._shard_of.get(dst, 0) == shard:
            self._pumps[shard].insert(record)
        else:
            self.boundary.append(record)

    def deliver(self, record: MessageRecord) -> None:
        """Land one in-flight record on its destination NIC.

        Called by the owning shard's :class:`DeliveryPump` at
        ``record[0]``.  Partitions are re-checked here: a node that
        died mid-flight does not receive the message.
        """
        _deliver_at, dst, src, _seq, wire, payload = record
        if src in self._partitioned or dst in self._partitioned:
            return
        receiver = self._nics[dst]
        receiver.rx_bytes += wire
        receiver.rx_messages += 1
        self.messages_delivered += 1
        handler = receiver.rx_handler
        if handler is not None:
            handler(payload)
        else:
            receiver.rx_queue.try_put(payload)

    def one_way_latency_us(self, src: str, dst: str, nbytes: int) -> float:
        """Unloaded delivery latency estimate for sizing timeouts."""
        sender = self._nics[src]
        receiver = self._nics[dst]
        return (nbytes / sender.profile.bandwidth_bpus
                + sender.profile.base_latency_us
                + self.switch.hop_latency_us
                + nbytes / receiver.profile.bandwidth_bpus)
