"""Network fabric: NICs, links, and a ToR switch.

Models the testbed of §4.1 — hosts on a 100 Gbps Arista ToR switch —
at the level LEED's mechanisms care about: per-port serialization
delay (bandwidth), a fixed per-hop latency, and in-order delivery per
(src, dst) pair.  The embedded FAWN nodes attach via a 1 GbE profile
with USB2-stack latency.

Messages are opaque payloads with a byte size; the fabric charges
transmit serialization at the sender port, a switch hop, and receive
serialization at the receiver port, then enqueues the payload on the
receiving NIC's rx queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.sim.core import Simulator
from repro.sim.queues import Store


@dataclass(frozen=True)
class NicProfile:
    """Timing parameters for one NIC class."""

    name: str = "100gbe-rdma"
    #: Bandwidth in bytes per microsecond (100 Gb/s = 12 500 B/µs).
    bandwidth_bpus: float = 12500.0
    #: One-way fixed latency: NIC processing + cable, microseconds.
    base_latency_us: float = 1.0
    #: Maximum transmission unit; larger messages are segmented.
    mtu_bytes: int = 4096


#: Profiles for the three testbed NICs.
NIC_100G = NicProfile("100gbe-rdma", bandwidth_bpus=12500.0, base_latency_us=1.0)
NIC_1G_USB = NicProfile("1gbe-usb2", bandwidth_bpus=37.5, base_latency_us=40.0,
                        mtu_bytes=1500)
NIC_1G = NicProfile("1gbe", bandwidth_bpus=125.0, base_latency_us=15.0,
                    mtu_bytes=1500)


@dataclass(frozen=True)
class SwitchProfile:
    """A cut-through ToR switch."""

    name: str = "arista-7160"
    hop_latency_us: float = 0.5


class Nic:
    """One network port: paced transmit, FIFO receive queue."""

    def __init__(self, sim: Simulator, address: str,
                 profile: Optional[NicProfile] = None):
        self.sim = sim
        self.address = address
        self.profile = profile or NIC_100G
        self.rx_queue: Store = Store(sim, name="rx@" + address)
        #: Fast-path delivery callback (``QueuePair.enable_fast_rx``):
        #: when set, the fabric hands arriving payloads straight to it
        #: instead of the rx queue, saving the dequeue event.
        self.rx_handler = None
        self._tx_free_at = 0.0
        self._rx_free_at = 0.0
        self.tx_bytes = 0
        self.rx_bytes = 0
        self.tx_messages = 0
        self.rx_messages = 0

    def serialize_tx(self, nbytes: int) -> float:
        """Reserve transmit time for ``nbytes``; returns completion time."""
        duration = nbytes / self.profile.bandwidth_bpus
        start = max(self.sim.now, self._tx_free_at)
        self._tx_free_at = start + duration
        self.tx_bytes += nbytes
        self.tx_messages += 1
        return self._tx_free_at

    def serialize_rx(self, nbytes: int, earliest: float) -> float:
        """Reserve receive time for ``nbytes`` arriving at ``earliest``."""
        duration = nbytes / self.profile.bandwidth_bpus
        start = max(earliest, self._rx_free_at)
        self._rx_free_at = start + duration
        self.rx_bytes += nbytes
        self.rx_messages += 1
        return self._rx_free_at

    def __repr__(self):
        return "<Nic %s %s tx=%d rx=%d>" % (
            self.address, self.profile.name, self.tx_messages, self.rx_messages)


class Network:
    """A single-switch fabric connecting named NICs."""

    def __init__(self, sim: Simulator, switch: Optional[SwitchProfile] = None):
        self.sim = sim
        self.switch = switch or SwitchProfile()
        self._nics: Dict[str, Nic] = {}
        self.messages_delivered = 0
        #: When set, drops all traffic to/from these addresses (failure tests).
        self._partitioned: set = set()

    def attach(self, address: str, profile: Optional[NicProfile] = None) -> Nic:
        """Create and register a NIC under ``address``."""
        if address in self._nics:
            raise ValueError("address %r already attached" % address)
        nic = Nic(self.sim, address, profile)
        self._nics[address] = nic
        return nic

    def nic(self, address: str) -> Nic:
        return self._nics[address]

    def addresses(self):
        return list(self._nics)

    # -- failure injection -------------------------------------------------------

    def partition(self, address: str) -> None:
        """Silently drop all traffic involving ``address``."""
        self._partitioned.add(address)

    def heal(self, address: str) -> None:
        self._partitioned.discard(address)

    def is_partitioned(self, address: str) -> bool:
        return address in self._partitioned

    # -- transmission --------------------------------------------------------------

    def transmit(self, src: str, dst: str, nbytes: int, payload: Any) -> None:
        """Send ``payload`` of ``nbytes`` from ``src`` to ``dst``.

        Fire-and-forget: the payload appears on the destination NIC's
        rx queue after serialization + switch + propagation delays.
        Delivery is in order per (src, dst) because both port pacers
        are FIFO.
        """
        if src not in self._nics or dst not in self._nics:
            raise KeyError("unknown endpoint in %r -> %r" % (src, dst))
        if src in self._partitioned or dst in self._partitioned:
            return  # dropped silently, like a dead cable
        sender = self._nics[src]
        receiver = self._nics[dst]
        tx_done = sender.serialize_tx(max(nbytes, 1))
        arrival = (tx_done + sender.profile.base_latency_us
                   + self.switch.hop_latency_us)
        rx_done = receiver.serialize_rx(max(nbytes, 1), arrival)
        delay = rx_done - self.sim.now

        def deliver():
            # Re-check partitions at delivery time: a node that died
            # mid-flight does not receive the message.
            if src in self._partitioned or dst in self._partitioned:
                return
            self.messages_delivered += 1
            handler = receiver.rx_handler
            if handler is not None:
                handler(payload)
            else:
                receiver.rx_queue.try_put(payload)

        self.sim.schedule(delay, deliver)

    def one_way_latency_us(self, src: str, dst: str, nbytes: int) -> float:
        """Unloaded delivery latency estimate for sizing timeouts."""
        sender = self._nics[src]
        receiver = self._nics[dst]
        return (nbytes / sender.profile.bandwidth_bpus
                + sender.profile.base_latency_us
                + self.switch.hop_latency_us
                + nbytes / receiver.profile.bandwidth_bpus)
