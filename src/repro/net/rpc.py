"""An RPC layer over the RDMA verbs (§3.5).

Request path: the client posts a two-sided SEND carrying the command
plus the rkey of a pre-allocated response buffer.  The server's
dispatcher pops the recv CQ, runs the registered handler (a simulation
generator — it may perform SSD I/O, forward along a chain, etc.), and
answers with a one-sided WRITE-with-IMM into the client's response
buffer, using the request id as the 32-bit immediate so the client
matches responses without extra messages.

Also provides ``notify`` (one-way, no response) for chain forwarding,
acknowledgments and heartbeats.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.net.rdma import QueuePair, SendCompletion
from repro.net.topology import Network
from repro.sim.core import Simulator
from repro.sim.events import Event


class RpcError(Exception):
    """Transport- or dispatch-level RPC failure."""


class RpcTimeout(RpcError):
    """A call did not complete within its deadline."""


@dataclass
class RpcRequest:
    """Wire envelope for a request."""

    request_id: int
    method: str
    body: Any
    nbytes: int
    reply_to: str
    rkey: int


@dataclass
class RpcResponse:
    """Wire envelope for a response."""

    request_id: int
    body: Any
    nbytes: int


@dataclass
class OneWay:
    """Wire envelope for a notification (no response expected)."""

    method: str
    body: Any
    nbytes: int


@dataclass
class RpcBatch:
    """Several coalesced requests sharing one SEND (one envelope).

    Produced by :meth:`RpcEndpoint.flush` when op coalescing packs
    multiple same-destination deferred calls into a single doorbell;
    the receiving dispatcher unpacks and serves each request
    individually.
    """

    requests: list


#: Fixed envelope overhead added to every request/response body.
ENVELOPE_BYTES = 32

Handler = Callable[[str, Any], Any]


class RpcEndpoint:
    """A node's RPC runtime: client calls + server handler dispatch."""

    def __init__(self, sim: Simulator, network: Network, address: str):
        self.sim = sim
        self.address = address
        self.qp = QueuePair(sim, network, address)
        self._handlers: Dict[str, Handler] = {}
        self._raw_handlers: Dict[str, Handler] = {}
        self._raw_sync_handlers: Dict[str, Handler] = {}
        self._pending: Dict[int, Event] = {}
        self._request_ids = itertools.count(1)
        self._response_region = self.qp.register_region(size=1 << 20)
        self.calls_sent = 0
        self.calls_served = 0
        self.notifications_sent = 0
        #: Op coalescing (client side of the batched datapath): when
        #: set, calls issued with ``defer=True`` buffer until
        #: :meth:`flush`, which packs same-destination requests into
        #: one SEND.  Callers that defer must flush before yielding.
        self.coalesce = False
        self.coalesce_limit = 8
        self._send_buf: Dict[str, list] = {}
        self.batches_sent = 0
        self.batched_requests = 0
        sim.process(self._dispatch_requests(), name="rpc-dispatch@" + address)
        sim.process(self._dispatch_responses(), name="rpc-responses@" + address)

    # -- server side ---------------------------------------------------------------

    def register_raw(self, method: str, handler) -> None:
        """Register a handler that manages its own response.

        The handler is invoked as ``handler(src_address, request)``
        with the full :class:`RpcRequest` envelope and must arrange
        for *some* endpoint to call :meth:`respond` on it — possibly a
        different node, after the request was forwarded along a
        replication chain (§3.7's request shipping).
        """
        if method in self._handlers or method in self._raw_handlers:
            raise ValueError("handler for %r already registered" % method)
        self._raw_handlers[method] = handler

    def respond(self, request: RpcRequest, body: Any, nbytes: int) -> None:
        """Answer ``request`` from this endpoint with a one-sided WRITE.

        Works for requests received here directly *and* for envelopes
        forwarded from other nodes: the reply address and rkey travel
        with the request.
        """
        response = RpcResponse(request.request_id, body, nbytes)
        self.calls_served += 1
        self.qp.post_write_imm(request.reply_to, request.rkey, response,
                               nbytes + ENVELOPE_BYTES,
                               imm=request.request_id)

    def forward(self, dst: str, request: RpcRequest, body: Any = None,
                nbytes: Optional[int] = None) -> None:
        """Re-post a received request envelope to another node.

        The reply address, rkey and request id are preserved, so the
        eventual responder answers the original caller directly —
        chain forwarding and CRRS request shipping both use this.
        """
        envelope = RpcRequest(request.request_id, request.method,
                              request.body if body is None else body,
                              request.nbytes if nbytes is None else nbytes,
                              request.reply_to, request.rkey)
        self.qp.post_send(dst, envelope, envelope.nbytes + ENVELOPE_BYTES)

    def register_raw_sync(self, method: str, handler) -> None:
        """Overlay a synchronous raw handler (fast datapath).

        The handler is invoked inline at dispatch time — no handler
        process — with ``(src_address, request)`` and must not yield;
        like a raw handler it arranges the response itself (typically
        via a completion callback).  Takes priority over a generator
        raw handler registered for the same method, which remains the
        fallback the sync handler may delegate slow cases to.
        """
        self._raw_sync_handlers[method] = handler

    def register(self, method: str, handler: Handler) -> None:
        """Register a generator-function handler for ``method``.

        The handler is invoked as ``handler(src_address, body)`` inside
        a new simulation process; its return value is either
        ``(response_body, response_nbytes)`` or ``None`` for one-way
        methods.
        """
        if method in self._handlers:
            raise ValueError("handler for %r already registered" % method)
        self._handlers[method] = handler

    def unregister(self, method: str) -> None:
        self._handlers.pop(method, None)
        self._raw_handlers.pop(method, None)

    def _dispatch_requests(self):
        while True:
            completion: SendCompletion = yield self.qp.recv_cq.get()
            envelope = completion.payload
            if isinstance(envelope, RpcBatch):
                for request in envelope.requests:
                    self._dispatch_one(completion.src, request)
            else:
                self._dispatch_one(completion.src, envelope)

    def _dispatch_one(self, src: str, envelope) -> None:
        if isinstance(envelope, RpcRequest):
            sync = self._raw_sync_handlers.get(envelope.method)
            if sync is not None:
                sync(src, envelope)
                return
            raw = self._raw_handlers.get(envelope.method)
            if raw is not None:
                self.sim.process(
                    self._run_raw(raw, src, envelope),
                    name="rpc-raw-%s@%s" % (envelope.method, self.address))
            else:
                self.sim.process(
                    self._serve(src, envelope),
                    name="rpc-serve-%s@%s" % (envelope.method, self.address))
        elif isinstance(envelope, OneWay):
            handler = self._handlers.get(envelope.method)
            if handler is not None:
                self.sim.process(
                    self._run_oneway(handler, src, envelope.body),
                    name="rpc-oneway-%s@%s" % (envelope.method, self.address))
        else:  # pragma: no cover - protocol guard
            raise RpcError("unexpected envelope %r" % (envelope,))

    def _run_raw(self, handler, src: str, request: RpcRequest):
        result = handler(src, request)
        if hasattr(result, "send"):
            yield from result
        else:
            yield self.sim.timeout(0)

    def _run_oneway(self, handler: Handler, src: str, body: Any):
        result = handler(src, body)
        if hasattr(result, "send"):
            yield from result
        else:
            yield self.sim.timeout(0)

    def _serve(self, src: str, request: RpcRequest):
        handler = self._handlers.get(request.method)
        if handler is None:
            response_body: Any = RpcError("no handler for %r at %s"
                                          % (request.method, self.address))
            response_nbytes = ENVELOPE_BYTES
        else:
            result = handler(src, request.body)
            if hasattr(result, "send"):
                outcome = yield from result
            else:
                outcome = result
                yield self.sim.timeout(0)
            if outcome is None:
                response_body, response_nbytes = None, 0
            else:
                response_body, response_nbytes = outcome
        self.calls_served += 1
        response = RpcResponse(request.request_id, response_body,
                               response_nbytes)
        self.qp.post_write_imm(request.reply_to, request.rkey, response,
                               response_nbytes + ENVELOPE_BYTES,
                               imm=request.request_id)

    def enable_fast_dispatch(self) -> None:
        """Bypass the CQ consumer processes (fast datapath).

        Inbound SENDs dispatch straight from delivery into
        :meth:`_dispatch_one`, and inbound response WRITEs complete
        their pending call event inline — one scheduled event less on
        each side of every RPC.  The CQ consumer processes stay parked
        on their now-idle Stores, so this is reversible per-message.
        """
        self.qp.recv_handler = self._on_request_delivery
        self.qp.write_handler = self._on_response_delivery

    def _on_request_delivery(self, completion: SendCompletion) -> None:
        envelope = completion.payload
        if isinstance(envelope, RpcBatch):
            for request in envelope.requests:
                self._dispatch_one(completion.src, request)
        else:
            self._dispatch_one(completion.src, envelope)

    def _on_response_delivery(self, completion) -> None:
        response: RpcResponse = completion.payload
        waiter = self._pending.pop(completion.imm, None)
        if waiter is not None and not waiter.triggered:
            if isinstance(response.body, RpcError):
                waiter.fail(response.body)
            else:
                waiter.succeed(response.body)

    # -- client side -----------------------------------------------------------------

    def _dispatch_responses(self):
        while True:
            completion = yield self.qp.write_cq.get()
            response: RpcResponse = completion.payload
            waiter = self._pending.pop(completion.imm, None)
            if waiter is not None and not waiter.triggered:
                if isinstance(response.body, RpcError):
                    waiter.fail(response.body)
                else:
                    waiter.succeed(response.body)

    def call(self, dst: str, method: str, body: Any, nbytes: int,
             timeout_us: Optional[float] = None, defer: bool = False) -> Event:
        """Issue a request; returns an event yielding the response body.

        When ``timeout_us`` is given the event fails with
        :class:`RpcTimeout` if no response arrives in time (needed for
        failure handling — a partitioned node never answers).

        ``defer=True`` (with :attr:`coalesce` set) buffers the SEND
        until the next :meth:`flush` so several same-destination calls
        share one doorbell; otherwise the SEND posts immediately.
        Deferral only pays off when the TX port is busy (the batch
        rides behind the in-flight message for free) — on an idle link
        with nothing else buffered it would just add latency, so that
        case posts immediately too.

        Tracing: when ``body`` carries a trace context (duck-typed —
        this layer never imports :mod:`repro.obs`), a ``rpc.<method>``
        child span opens here and closes when the waiter triggers, on
        the success *and* the timeout path alike; server-side spans
        nest under it because the child context replaces ``body.trace``
        before the envelope is posted.
        """
        request_id = next(self._request_ids)
        waiter = self.sim.event()
        self._pending[request_id] = waiter
        parent = getattr(body, "trace", None)
        if parent is not None:
            net_ctx = parent.child("rpc." + method, cat="net",
                                   args={"dst": dst, "nbytes": nbytes})
            body.trace = net_ctx
            waiter.callbacks.append(lambda _evt: net_ctx.finish())
        request = RpcRequest(request_id, method, body,
                             nbytes, self.address, self._response_region.key)
        self.calls_sent += 1
        if defer and self.coalesce and (
                self._send_buf or not self.qp.nic.tx_idle()):
            self._send_buf.setdefault(dst, []).append(request)
        else:
            self.qp.post_send(dst, request, nbytes + ENVELOPE_BYTES)
        if timeout_us is not None:
            def expire():
                pending = self._pending.pop(request_id, None)
                if pending is not None and not pending.triggered:
                    pending.fail(RpcTimeout(
                        "%s->%s %s timed out after %gus"
                        % (self.address, dst, method, timeout_us)))
            self.sim.schedule(timeout_us, expire)
        return waiter

    def flush(self) -> None:
        """Post deferred calls; same-destination requests share a SEND.

        Runs of up to :attr:`coalesce_limit` requests to one
        destination wrap into an :class:`RpcBatch` paying a single
        envelope (and, below, a single wire-overhead charge); a lone
        request posts exactly as an undeferred call would.  No-op when
        nothing is buffered, so callers may invoke it unconditionally.
        """
        if not self._send_buf:
            return
        buffered, self._send_buf = self._send_buf, {}
        for dst, requests in buffered.items():
            for i in range(0, len(requests), self.coalesce_limit):
                chunk = requests[i:i + self.coalesce_limit]
                if len(chunk) == 1:
                    request = chunk[0]
                    self.qp.post_send(dst, request,
                                      request.nbytes + ENVELOPE_BYTES)
                    continue
                nbytes = sum(request.nbytes for request in chunk)
                self.qp.post_send(dst, RpcBatch(chunk),
                                  nbytes + ENVELOPE_BYTES)
                self.batches_sent += 1
                self.batched_requests += len(chunk)

    def notify(self, dst: str, method: str, body: Any, nbytes: int) -> None:
        """One-way message; fire-and-forget."""
        self.notifications_sent += 1
        self.qp.post_send(dst, OneWay(method, body, nbytes),
                          nbytes + ENVELOPE_BYTES)

    def __repr__(self):
        return "<RpcEndpoint %s sent=%d served=%d>" % (
            self.address, self.calls_sent, self.calls_served)
