"""Power metering and energy-efficiency accounting."""

from repro.power.meter import EnergyReport, PowerMeter, PowerSample, cluster_energy

__all__ = ["PowerMeter", "PowerSample", "EnergyReport", "cluster_energy"]
