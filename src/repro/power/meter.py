"""Wall-power metering and energy-efficiency accounting.

Stands in for the Watts Up Pro / HOBO loggers of §4.1.  A
:class:`PowerMeter` integrates a node's wall power over simulated
time using the linear idle→max model of :class:`PlatformSpec`, driven
by the observed utilization of the node's cores and SSDs.  Energy
efficiency is then requests completed per Joule — the paper's
headline metric (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.hw.platforms import PlatformSpec
from repro.sim.core import Simulator


@dataclass
class PowerSample:
    """One (time, watts) observation."""

    time_us: float
    watts: float


class PowerMeter:
    """Integrates one node's wall power over simulated time.

    The node reports utilization through callables supplied at
    construction; the meter samples them lazily whenever energy is
    requested, using trapezoidal integration over recorded samples.
    """

    def __init__(self, sim: Simulator, spec: PlatformSpec,
                 utilization_fn=None, name: str = "meter",
                 extra_idle_w: float = 0.0):
        self.sim = sim
        self.spec = spec
        self.name = name
        #: Flat additional draw (e.g. per-node switch share).
        self.extra_idle_w = extra_idle_w
        self._utilization_fn = utilization_fn or (lambda: 0.0)
        self._samples: List[PowerSample] = [
            PowerSample(sim.now, self._current_watts())]
        self._energy_j = 0.0
        self._last_time = sim.now
        self._last_watts = self._samples[0].watts

    def _current_watts(self) -> float:
        return self.spec.active_power_w(self._utilization_fn()) + self.extra_idle_w

    def sample(self) -> PowerSample:
        """Record a power observation now and fold it into the integral."""
        now = self.sim.now
        watts = self._current_watts()
        # Trapezoid between the previous sample and now.
        self._energy_j += 0.5 * (self._last_watts + watts) * (now - self._last_time) * 1e-6
        self._last_time = now
        self._last_watts = watts
        obs = PowerSample(now, watts)
        self._samples.append(obs)
        return obs

    def energy_joules(self) -> float:
        """Total energy consumed up to now."""
        self.sample()
        return self._energy_j

    def mean_power_w(self) -> float:
        if self.sim.now <= 0:
            return self._last_watts
        return self.energy_joules() / (self.sim.now * 1e-6)

    @property
    def samples(self) -> List[PowerSample]:
        return list(self._samples)


@dataclass
class EnergyReport:
    """Requests-per-Joule accounting for a run."""

    requests_completed: int
    elapsed_us: float
    energy_joules: float
    label: str = ""

    @property
    def throughput_qps(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.requests_completed / (self.elapsed_us * 1e-6)

    @property
    def queries_per_joule(self) -> float:
        if self.energy_joules <= 0:
            return 0.0
        return self.requests_completed / self.energy_joules

    @property
    def mean_power_w(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.energy_joules / (self.elapsed_us * 1e-6)

    def __str__(self):
        return ("%s: %d reqs in %.3f s, %.1f J -> %.1f KQPS, %.1f KQueries/J"
                % (self.label or "run", self.requests_completed,
                   self.elapsed_us * 1e-6, self.energy_joules,
                   self.throughput_qps / 1e3, self.queries_per_joule / 1e3))


def cluster_energy(meters: List[PowerMeter]) -> float:
    """Total Joules across a set of node meters."""
    return sum(m.energy_joules() for m in meters)
