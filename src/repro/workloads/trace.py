"""Workload trace recording and replay.

A *trace* is a recorded sequence of operations (op, key, value) that
can be saved, inspected, and replayed deterministically — the tool
for regression-testing a performance fix against the exact request
sequence that exposed it, or for feeding the same operations to two
systems (the harness's A/B runs do this implicitly through shared
seeds; traces make it explicit and portable).

Format (text, one line per op)::

    put <hex-key> <hex-value>
    get <hex-key>
    del <hex-key>
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, TextIO

from repro.workloads.ycsb import Operation, YCSBWorkload


@dataclass
class Trace:
    """An ordered, replayable operation sequence."""

    operations: List[Operation] = field(default_factory=list)

    def append(self, operation: Operation) -> None:
        self.operations.append(operation)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    # -- capture ---------------------------------------------------------------

    @classmethod
    def record(cls, workload: YCSBWorkload, count: int) -> "Trace":
        """Materialize ``count`` operations from a workload."""
        trace = cls()
        for operation in workload.operations(count):
            trace.append(operation)
        return trace

    # -- persistence --------------------------------------------------------------

    def dump(self, stream: TextIO) -> None:
        """Write the text format to ``stream``."""
        for operation in self.operations:
            if operation.op == "get":
                stream.write("get %s\n" % operation.key.hex())
            elif operation.op == "del":
                stream.write("del %s\n" % operation.key.hex())
            else:  # put / rmw carry a value
                stream.write("%s %s %s\n" % (operation.op,
                                             operation.key.hex(),
                                             (operation.value or b"").hex()))

    @classmethod
    def load(cls, stream: TextIO) -> "Trace":
        """Parse the text format from ``stream``."""
        trace = cls()
        for line_number, line in enumerate(stream, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            op = parts[0]
            if op == "get" and len(parts) == 2:
                trace.append(Operation("get", bytes.fromhex(parts[1])))
            elif op == "del" and len(parts) == 2:
                trace.append(Operation("del", bytes.fromhex(parts[1])))
            elif op in ("put", "rmw") and len(parts) == 3:
                trace.append(Operation(op, bytes.fromhex(parts[1]),
                                       bytes.fromhex(parts[2])))
            else:
                raise ValueError("trace line %d malformed: %r"
                                 % (line_number, line))
        return trace

    # -- replay -----------------------------------------------------------------------

    def replay(self, sim, client, concurrency: int = 1):
        """Generator: run the trace against a client; returns stats.

        With ``concurrency == 1`` the trace is replayed strictly in
        order (required to reproduce a dependent sequence); higher
        concurrency fans independent operations out like a driver.
        """
        from repro.workloads.driver import DriverStats, _execute_operation
        stats = DriverStats()
        stats.started_at_us = sim.now
        if concurrency <= 1:
            for operation in self.operations:
                begin = sim.now
                result = yield from _execute_operation(client, operation)
                status = getattr(result, "status", "ok")
                stats.record(sim.now, sim.now - begin,
                             status in ("ok", "not_found"))
        else:
            cursor = [0]

            def worker():
                while cursor[0] < len(self.operations):
                    operation = self.operations[cursor[0]]
                    cursor[0] += 1
                    begin = sim.now
                    result = yield from _execute_operation(client, operation)
                    status = getattr(result, "status", "ok")
                    stats.record(sim.now, sim.now - begin,
                                 status in ("ok", "not_found"))

            workers = [sim.process(worker(), name="trace.worker")
                       for _ in range(concurrency)]
            yield sim.all_of(workers)
        stats.finished_at_us = sim.now
        return stats

    # -- inspection ---------------------------------------------------------------------

    def mix(self) -> dict:
        """Operation-type histogram."""
        histogram: dict = {}
        for operation in self.operations:
            histogram[operation.op] = histogram.get(operation.op, 0) + 1
        return histogram

    def keys(self) -> set:
        return {operation.key for operation in self.operations}
