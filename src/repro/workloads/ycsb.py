"""YCSB workload mixes (§4.1).

The paper evaluates six workloads — YCSB A/B/C/D/F plus a write-heavy
"WR" — on 256 B and 1 KB objects, with uniform and Zipf key
distributions at several skewness factors.  This module reproduces
the generator side: each workload yields an endless stream of
``Operation`` records a driver executes against any client API.

Mixes (standard YCSB definitions; WR per the paper's Fig. 10 use of a
write-only Zipf workload):

========  =====================================  =================
Workload  Mix                                    Distribution
========  =====================================  =================
A         50% read / 50% update                  zipfian
B         95% read / 5% update                   zipfian
C         100% read                              zipfian
D         95% read / 5% insert                   latest
F         50% read / 50% read-modify-write       zipfian
WR        100% update                            zipfian
========  =====================================  =================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.sim.rng import RandomStream, RngRegistry
from repro.workloads.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)

#: The YCSB default zipfian constant.
DEFAULT_SKEW = 0.99

READ = "get"
UPDATE = "put"
INSERT = "put"
RMW = "rmw"


@dataclass(frozen=True)
class Operation:
    """One generated workload operation."""

    op: str           # "get" | "put" | "rmw"
    key: bytes
    value: Optional[bytes] = None
    is_insert: bool = False


@dataclass(frozen=True)
class WorkloadSpec:
    """Mix definition for one YCSB workload."""

    name: str
    read_fraction: float
    update_fraction: float
    insert_fraction: float
    rmw_fraction: float
    distribution: str  # "zipfian" | "latest" | "uniform"


WORKLOADS = {
    "A": WorkloadSpec("YCSB-A", 0.50, 0.50, 0.0, 0.0, "zipfian"),
    "B": WorkloadSpec("YCSB-B", 0.95, 0.05, 0.0, 0.0, "zipfian"),
    "C": WorkloadSpec("YCSB-C", 1.00, 0.00, 0.0, 0.0, "zipfian"),
    "D": WorkloadSpec("YCSB-D", 0.95, 0.00, 0.05, 0.0, "latest"),
    "F": WorkloadSpec("YCSB-F", 0.50, 0.00, 0.0, 0.50, "zipfian"),
    "WR": WorkloadSpec("YCSB-WR", 0.00, 1.00, 0.0, 0.0, "zipfian"),
}


def make_key(record_id: int, prefix: str = "user") -> bytes:
    """YCSB-style key for a record id."""
    return ("%s%012d" % (prefix, record_id)).encode("ascii")


def make_value(rng: RandomStream, size: int) -> bytes:
    """A value of exactly ``size`` pseudo-random (compressible) bytes."""
    return bytes(rng.getrandbits(8) for _ in range(min(size, 16))) + \
        b"x" * max(size - 16, 0)


class YCSBWorkload:
    """An endless operation stream for one workload mix.

    Parameters
    ----------
    workload:
        One of "A", "B", "C", "D", "F", "WR".
    num_records:
        Records loaded before the run (the key space).
    value_size:
        Object size in bytes (the paper uses 256 and 1024).
    skew:
        Zipfian constant; ignored for uniform/latest distributions.
    key_prefix:
        Namespace prefix (lets concurrent drivers share a cluster
        without aliasing).
    """

    def __init__(self, workload: str, num_records: int,
                 value_size: int = 1024, skew: float = DEFAULT_SKEW,
                 distribution: Optional[str] = None, seed: int = 0,
                 key_prefix: str = "user"):
        workload = workload.upper()
        if workload not in WORKLOADS:
            raise KeyError("unknown workload %r (have %s)"
                           % (workload, sorted(WORKLOADS)))
        self.spec = WORKLOADS[workload]
        self.num_records = num_records
        self.value_size = value_size
        self.skew = skew
        self.key_prefix = key_prefix
        registry = RngRegistry(seed)
        self.rng = registry.stream("ycsb.ops")
        chooser_rng = registry.stream("ycsb.keys")
        dist = distribution or self.spec.distribution
        if dist == "zipfian":
            self._chooser = ScrambledZipfianGenerator(
                num_records, skew, chooser_rng)
        elif dist == "uniform":
            self._chooser = UniformGenerator(num_records, chooser_rng)
        elif dist == "latest":
            self._latest = LatestGenerator(num_records, skew, chooser_rng)
            self._chooser = self._latest
        else:
            raise ValueError("unknown distribution %r" % dist)
        self.distribution = dist
        self._insert_cursor = num_records

    # -- load phase ------------------------------------------------------------------

    def load_pairs(self) -> Iterator[Tuple[bytes, bytes]]:
        """The (key, value) pairs of the initial load phase."""
        for record_id in range(self.num_records):
            yield (make_key(record_id, self.key_prefix),
                   make_value(self.rng, self.value_size))

    # -- run phase ---------------------------------------------------------------------

    def next_operation(self) -> Operation:
        roll = self.rng.random()
        spec = self.spec
        if roll < spec.read_fraction:
            return Operation(READ, self._existing_key())
        roll -= spec.read_fraction
        if roll < spec.update_fraction:
            return Operation(UPDATE, self._existing_key(),
                             make_value(self.rng, self.value_size))
        roll -= spec.update_fraction
        if roll < spec.insert_fraction:
            record_id = self._insert_cursor
            self._insert_cursor += 1
            if self.distribution == "latest":
                self._latest.advance()
            return Operation(INSERT, make_key(record_id, self.key_prefix),
                             make_value(self.rng, self.value_size),
                             is_insert=True)
        # read-modify-write
        return Operation(RMW, self._existing_key(),
                         make_value(self.rng, self.value_size))

    def _existing_key(self) -> bytes:
        return make_key(self._chooser.next(), self.key_prefix)

    def operations(self, count: int) -> Iterator[Operation]:
        for _ in range(count):
            yield self.next_operation()

    def __iter__(self):
        while True:
            yield self.next_operation()

    def __repr__(self):
        return "<YCSBWorkload %s records=%d vsize=%d skew=%.2f>" % (
            self.spec.name, self.num_records, self.value_size, self.skew)
