"""Workload generation: YCSB mixes, Zipf distributions, drivers."""

from repro.workloads.driver import (
    ClosedLoopDriver,
    DriverStats,
    OpenLoopDriver,
    merge_stats,
)
from repro.workloads.trace import Trace
from repro.workloads.ycsb import (
    DEFAULT_SKEW,
    WORKLOADS,
    Operation,
    WorkloadSpec,
    YCSBWorkload,
    make_key,
    make_value,
)
from repro.workloads.zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

__all__ = [
    "Trace",
    "YCSBWorkload",
    "WorkloadSpec",
    "Operation",
    "WORKLOADS",
    "DEFAULT_SKEW",
    "make_key",
    "make_value",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "UniformGenerator",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "DriverStats",
    "merge_stats",
]
