"""Zipfian key-choice generators, YCSB-style.

Implements the Gray et al. quick-zipf algorithm used by the original
YCSB ``ZipfianGenerator`` (zeta-based inversion) plus the scrambled
variant that spreads hot keys across the key space, and the "latest"
distribution used by YCSB-D (skew toward recently-inserted records).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim.rng import RandomStream, derive_stream

FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
FNV_PRIME_64 = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer, as YCSB uses for key scrambling."""
    data = value.to_bytes(8, "little", signed=False)
    hashed = FNV_OFFSET_BASIS_64
    for byte in data:
        hashed ^= byte
        hashed = (hashed * FNV_PRIME_64) & 0xFFFFFFFFFFFFFFFF
    return hashed


def zeta(n: int, theta: float) -> float:
    """Generalized harmonic number sum_{i=1..n} 1/i^theta."""
    return sum(1.0 / (i ** theta) for i in range(1, n + 1))


class ZipfianGenerator:
    """Draws integers in [0, n) with Zipf(theta) popularity.

    ``theta`` is the YCSB "zipfian constant": 0 = uniform-ish, the
    YCSB default is 0.99, and the paper sweeps 0.1 … 0.99 (Figs 7, 8,
    10).  Uses the Gray et al. inversion, O(1) per sample after an
    O(n) zeta precomputation (cached per (n, theta)).
    """

    _zeta_cache: dict = {}

    def __init__(self, n: int, theta: float = 0.99,
                 rng: Optional[RandomStream] = None):
        if n < 1:
            raise ValueError("need at least one item")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1), got %r" % theta)
        self.n = n
        self.theta = theta
        self.rng = rng or derive_stream(0, "zipf.zipfian")
        cache_key = (n, round(theta, 6))
        if cache_key not in self._zeta_cache:
            self._zeta_cache[cache_key] = zeta(n, theta)
        self.zetan = self._zeta_cache[cache_key]
        self.zeta2 = zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = ((1.0 - (2.0 / n) ** (1.0 - theta))
                    / (1.0 - self.zeta2 / self.zetan))

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1.0) ** self.alpha)

    def __iter__(self):
        while True:
            yield self.next()


class ScrambledZipfianGenerator:
    """Zipfian ranks scattered over the item space via FNV hashing.

    Matches YCSB's ``ScrambledZipfianGenerator``: popularity is
    Zipfian but *which* items are popular is pseudo-random, so hot
    keys do not cluster in one ring arc — important for the load
    imbalance experiments, where the imbalance should come from skew,
    not from adjacency.
    """

    def __init__(self, n: int, theta: float = 0.99,
                 rng: Optional[RandomStream] = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, rng)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.n

    def __iter__(self):
        while True:
            yield self.next()


class LatestGenerator:
    """YCSB's "latest" distribution: skew toward recent inserts.

    Draws a Zipf-distributed *age* and subtracts it from the current
    maximum record id; used by YCSB-D.
    """

    def __init__(self, initial_n: int, theta: float = 0.99,
                 rng: Optional[RandomStream] = None):
        self.max_id = max(initial_n - 1, 0)
        self._zipf = ZipfianGenerator(max(initial_n, 1), theta, rng)

    def advance(self) -> int:
        """Record an insert; returns the new record id."""
        self.max_id += 1
        return self.max_id

    def next(self) -> int:
        age = self._zipf.next()
        return max(self.max_id - age, 0)


class UniformGenerator:
    """Uniform key choice over [0, n)."""

    def __init__(self, n: int, rng: Optional[RandomStream] = None):
        if n < 1:
            raise ValueError("need at least one item")
        self.n = n
        self.rng = rng or derive_stream(0, "zipf.uniform")

    def next(self) -> int:
        return self.rng.randrange(self.n)

    def __iter__(self):
        while True:
            yield self.next()
