"""Workload drivers: closed-loop and open-loop request generation.

Drivers execute a :class:`~repro.workloads.ycsb.YCSBWorkload` stream
against anything exposing the client API (``get``/``put``/``delete``
generator methods returning results with a ``status``) — a LEED
front-end, a baseline client, or a bare data store.

* **Closed loop**: N outstanding operations per driver; the next op
  issues when one completes.  Used for peak-throughput measurements
  (Table 3, Fig. 5).
* **Open loop**: Poisson arrivals at a target rate, the standard way
  to trace a latency-throughput curve (Figs. 6, 14) — latency blows
  up as the offered rate approaches capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.core import Simulator
from repro.sim.rng import derive_stream
from repro.workloads.ycsb import Operation, YCSBWorkload


@dataclass
class DriverStats:
    """Completed-operation accounting for one driver."""

    completed: int = 0
    failed: int = 0
    started_at_us: float = 0.0
    finished_at_us: float = 0.0
    latencies_us: List[float] = field(default_factory=list)
    #: (completion_time_us, latency_us) samples for timelines (Fig. 9).
    timeline: List[tuple] = field(default_factory=list)
    record_timeline: bool = False

    def record(self, now: float, latency_us: float, ok: bool) -> None:
        self.completed += 1
        if not ok:
            self.failed += 1
        self.latencies_us.append(latency_us)
        if self.record_timeline:
            self.timeline.append((now, latency_us))

    @property
    def elapsed_us(self) -> float:
        return max(self.finished_at_us - self.started_at_us, 0.0)

    @property
    def throughput_qps(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.completed / (self.elapsed_us * 1e-6)

    def mean_latency_us(self) -> float:
        if not self.latencies_us:
            return 0.0
        return sum(self.latencies_us) / len(self.latencies_us)

    def percentile_us(self, quantile: float) -> float:
        if not self.latencies_us:
            return 0.0
        ordered = sorted(self.latencies_us)
        index = min(int(quantile * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def merge(self, other: "DriverStats") -> "DriverStats":
        merged = DriverStats(
            completed=self.completed + other.completed,
            failed=self.failed + other.failed,
            started_at_us=min(self.started_at_us, other.started_at_us),
            finished_at_us=max(self.finished_at_us, other.finished_at_us))
        merged.latencies_us = self.latencies_us + other.latencies_us
        merged.timeline = sorted(self.timeline + other.timeline)
        return merged


def _execute_operation(client, operation: Operation):
    """Generator: run one workload op against a client-like object."""
    if operation.op == "get":
        result = yield from client.get(operation.key)
        return result
    if operation.op == "put":
        result = yield from client.put(operation.key, operation.value)
        return result
    if operation.op == "rmw":
        read = yield from client.get(operation.key)
        if getattr(read, "status", None) not in ("ok", "not_found"):
            return read
        result = yield from client.put(operation.key, operation.value)
        return result
    if operation.op == "del":
        result = yield from client.delete(operation.key)
        return result
    raise ValueError("unknown op %r" % operation.op)


class ClosedLoopDriver:
    """``concurrency`` outstanding ops; stops after ``num_ops`` total."""

    def __init__(self, sim: Simulator, client, workload: YCSBWorkload,
                 num_ops: int, concurrency: int = 8,
                 record_timeline: bool = False):
        self.sim = sim
        self.client = client
        self.workload = workload
        self.num_ops = num_ops
        self.concurrency = concurrency
        self.stats = DriverStats(record_timeline=record_timeline)
        self._issued = 0

    def run(self):
        """Generator: drive to completion; returns the stats."""
        self.stats.started_at_us = self.sim.now
        workers = [self.sim.process(self._worker(), name="driver.w%d" % i)
                   for i in range(self.concurrency)]
        yield self.sim.all_of(workers)
        self.stats.finished_at_us = self.sim.now
        return self.stats

    def _worker(self):
        while self._issued < self.num_ops:
            self._issued += 1
            operation = self.workload.next_operation()
            begin = self.sim.now
            result = yield from _execute_operation(self.client, operation)
            status = getattr(result, "status", "ok")
            self.stats.record(self.sim.now, self.sim.now - begin,
                              status in ("ok", "not_found"))


class OpenLoopDriver:
    """Poisson arrivals at ``rate_qps``; runs for ``duration_us``.

    ``max_inflight`` bounds concurrency so an over-saturated run does
    not spawn unbounded processes — arrivals beyond the bound are
    dropped and counted (they would have seen effectively infinite
    latency).
    """

    def __init__(self, sim: Simulator, client, workload: YCSBWorkload,
                 rate_qps: float, duration_us: float,
                 max_inflight: int = 512, seed: int = 0,
                 record_timeline: bool = False):
        if rate_qps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.client = client
        self.workload = workload
        self.rate_qps = rate_qps
        self.duration_us = duration_us
        self.max_inflight = max_inflight
        self.rng = derive_stream(seed, "driver.openloop")
        self.stats = DriverStats(record_timeline=record_timeline)
        self.dropped = 0
        self._inflight = 0

    def run(self):
        """Generator: offered load for the duration; returns the stats."""
        self.stats.started_at_us = self.sim.now
        deadline = self.sim.now + self.duration_us
        mean_gap_us = 1e6 / self.rate_qps
        pending = []
        while self.sim.now < deadline:
            yield self.sim.timeout(self.rng.expovariate(1.0 / mean_gap_us))
            if self._inflight >= self.max_inflight:
                self.dropped += 1
                continue
            operation = self.workload.next_operation()
            self._inflight += 1
            pending.append(self.sim.process(self._one(operation),
                                            name="driver.op"))
            pending = [p for p in pending if not p.triggered]
        if pending:
            yield self.sim.all_of(pending)
        self.stats.finished_at_us = self.sim.now
        return self.stats

    def _one(self, operation: Operation):
        begin = self.sim.now
        result = yield from _execute_operation(self.client, operation)
        status = getattr(result, "status", "ok")
        self.stats.record(self.sim.now, self.sim.now - begin,
                          status in ("ok", "not_found"))
        self._inflight -= 1


def merge_stats(stats: List[DriverStats]) -> DriverStats:
    """Combine several drivers' stats into one summary."""
    if not stats:
        return DriverStats()
    merged = stats[0]
    for other in stats[1:]:
        merged = merged.merge(other)
    return merged
